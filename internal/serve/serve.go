// Package serve is the client-facing trusted-timestamp serving
// subsystem: the layer that turns a calibrated Triad node into a
// service handling request traffic at scale (the TimeStamping
// Authority and trusted-lease use-cases motivating the paper's
// introduction).
//
// Requests are dispatched across shards keyed by client ID; each shard
// holds a bounded FIFO queue and drains it in batches, reading trusted
// time ONCE per batch — under load, one TrustedNow amortizes over up
// to BatchMax responses, which is what lets a single node serve tens
// of thousands of requests per second. Admission control protects the
// node instead of letting it collapse: a full shard queue or an
// exhausted per-client token bucket sheds the request immediately with
// an explicit StatusOverloaded response, so clients learn to back off
// and served requests keep bounded latency.
//
// The core is platform-agnostic and allocation-free on the dispatch
// path. SimBinding runs it on the deterministic simulation
// (internal/experiment's load sweeps); LiveServer runs the identical
// logic over UDP.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"triadtime/internal/commit"
	"triadtime/internal/metrics"
	"triadtime/internal/wire"
	"triadtime/tsa"
)

// The wire format reserves exactly one serialized tsa token per
// response; the two packages must agree on its size.
const (
	_ = uint(tsa.TokenSize - wire.StampTokenSize)
	_ = uint(wire.StampTokenSize - tsa.TokenSize)
)

// Likewise for commitment tokens, and for the verdict enums: commit
// responses carry the vault's verdict as a direct cast, so the two
// packages' values must agree pairwise.
const (
	_ = uint(commit.TokenSize - wire.CommitTokenSize)
	_ = uint(wire.CommitTokenSize - commit.TokenSize)
	_ = uint(uint8(commit.OK) - uint8(wire.CommitOK))
	_ = uint(uint8(wire.CommitOK) - uint8(commit.OK))
	_ = uint(uint8(commit.Sealed) - uint8(wire.CommitSealed))
	_ = uint(uint8(wire.CommitSealed) - uint8(commit.Sealed))
	_ = uint(uint8(commit.Fenced) - uint8(wire.CommitFenced))
	_ = uint(uint8(wire.CommitFenced) - uint8(commit.Fenced))
	_ = uint(uint8(commit.BadToken) - uint8(wire.CommitBadToken))
	_ = uint(uint8(wire.CommitBadToken) - uint8(commit.BadToken))
	_ = uint(uint8(commit.Unavailable) - uint8(wire.CommitUnavailable))
	_ = uint(uint8(wire.CommitUnavailable) - uint8(commit.Unavailable))
)

// Clock supplies trusted timestamps in nanoseconds. Both protocol
// variants, the triadtime façades, and plain test clocks satisfy it.
type Clock interface {
	TrustedNow() (int64, error)
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() (int64, error)

// TrustedNow implements Clock.
func (f ClockFunc) TrustedNow() (int64, error) { return f() }

// ErrOverloaded is the error form of StatusOverloaded, returned by
// bindings that surface shedding to local callers.
var ErrOverloaded = errors.New("serve: overloaded")

// Config parameterizes a Server.
type Config struct {
	// Shards is the number of queue/batch lanes client IDs hash onto.
	// Default 4.
	Shards int
	// QueueDepth bounds each shard's pending-request queue; a full
	// queue sheds new arrivals with StatusOverloaded. Default 1024.
	QueueDepth int
	// BatchMax caps how many queued requests one Drain serves from a
	// single TrustedNow read. Default 256.
	BatchMax int
	// RatePerClient is the sustained per-client admission rate in
	// requests/second, enforced by a token bucket per client ID.
	// Zero disables per-client limiting.
	RatePerClient float64
	// RateBurst is the token bucket's capacity (how far a client may
	// momentarily exceed the sustained rate). Default: one second's
	// worth of RatePerClient, at least 1.
	RateBurst float64
	// Clock is the trusted time source. Required.
	Clock Clock
	// Stamper, when set, issues tsa tokens for requests carrying
	// FlagWantToken, stamped against the batch's single trusted read.
	Stamper *tsa.Stamper
	// Vault, when set, serves commit operations (wire kinds 8–10):
	// time-locked commitment locks, unlocks, and status queries,
	// decided per-request by the vault (which reads the clock itself —
	// an unlock decision must see the vault's rollback checks, so it is
	// not amortized over the batch read). nil answers every commit
	// request CommitUnavailable.
	Vault *commit.Vault
	// QueueWait, when set, records each served request's queue wait
	// (admission to drain, in the binding's monotonic nanoseconds).
	QueueWait *metrics.Histogram
}

// withDefaults fills zero fields.
func (c Config) withDefaults() (Config, error) {
	if c.Clock == nil {
		return c, errors.New("serve: Clock is required")
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.RatePerClient < 0 {
		return c, fmt.Errorf("serve: negative RatePerClient %g", c.RatePerClient)
	}
	if c.RateBurst <= 0 {
		c.RateBurst = c.RatePerClient
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	return c, nil
}

// Counters is a point-in-time snapshot of the server's cumulative
// admission and serving tallies.
type Counters struct {
	// Received counts every submitted request.
	Received uint64
	// Queued counts requests admitted into a shard queue.
	Queued uint64
	// Served counts requests answered with StatusOK, plus commit
	// operations the vault decided (any verdict but CommitUnavailable —
	// a refusal is a decision).
	Served uint64
	// ShedQueueFull counts requests shed because their shard's queue
	// was full.
	ShedQueueFull uint64
	// ShedRateLimited counts requests shed by per-client rate limits.
	ShedRateLimited uint64
	// Unavailable counts drained requests answered with
	// StatusUnavailable because the trusted clock could not serve.
	Unavailable uint64
	// TokensIssued counts tsa tokens stamped into responses.
	TokensIssued uint64
	// Batches counts Drain calls that served at least one request —
	// i.e. TrustedNow reads; Served+Unavailable over Batches is the
	// amortization factor batching bought.
	Batches uint64
}

// Shed reports the total shed requests (queue + rate).
func (c Counters) Shed() uint64 { return c.ShedQueueFull + c.ShedRateLimited }

// Summary renders the counters as one table line.
func (c Counters) Summary() string {
	return fmt.Sprintf("received=%d queued=%d served=%d shed_queue=%d shed_rate=%d unavailable=%d tokens=%d batches=%d",
		c.Received, c.Queued, c.Served, c.ShedQueueFull, c.ShedRateLimited,
		c.Unavailable, c.TokensIssued, c.Batches)
}

// Delivery pairs a built response with the address it goes back to.
// The type parameter is the binding's reply-address type: simnet.Addr
// in simulation, net.Addr live, or anything cheap in benchmarks.
// Exactly one of Resp and Commit is populated, selected by IsCommit.
type Delivery[T any] struct {
	To   T
	Resp wire.TimeResponse
	// IsCommit marks Commit as the populated response: commit
	// operations share the shard queues and drain cycle with timestamp
	// requests but answer on their own wire format.
	IsCommit bool
	Commit   wire.CommitResponse
}

// pending is one admitted request waiting in a shard queue. op selects
// the family: 0 is a timestamp request; the commit kinds carry their
// operation in op, the lock parameters in hash/unlockNanos/flags, and
// the presented token (unlock/status) pre-parsed in ctok.
type pending[T any] struct {
	to            T
	op            wire.Kind
	clientID, seq uint64
	flags         uint8
	hash          [wire.StampHashSize]byte
	unlockNanos   int64
	ctok          commit.Token
	enqueuedNanos int64
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	//triad:monotonic refill reference; a rollback would mint free tokens
	lastNanos int64
}

// shard is one queue/batch lane. Each shard has its own lock, so
// submissions for different clients contend only within their lane and
// drains never block the whole server.
type shard[T any] struct {
	mu      sync.Mutex
	ring    []pending[T] // fixed-capacity FIFO: QueueDepth slots
	head, n int
	buckets map[uint64]*bucket
	batch   []pending[T] // drain scratch, capacity BatchMax
}

// Server is the serving engine. It is safe for concurrent use: every
// shard is independently locked and counters are atomic. In the
// single-threaded simulation the locks are uncontended and cost a few
// nanoseconds; live bindings run one goroutine per shard plus
// concurrent submitters.
type Server[T any] struct {
	cfg    Config
	shards []*shard[T]

	received, queued, served     atomic.Uint64
	shedQueue, shedRate          atomic.Uint64
	unavailable, tokens, batches atomic.Uint64
}

// New creates a server.
func New[T any](cfg Config) (*Server[T], error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server[T]{cfg: cfg, shards: make([]*shard[T], cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = &shard[T]{
			ring:    make([]pending[T], cfg.QueueDepth),
			buckets: make(map[uint64]*bucket),
			batch:   make([]pending[T], 0, cfg.BatchMax),
		}
	}
	return s, nil
}

// Shards reports the number of shards (the bindings' tick fan-out).
func (s *Server[T]) Shards() int { return len(s.shards) }

// BatchMax reports the per-drain batch cap (for sizing reply scratch).
func (s *Server[T]) BatchMax() int { return s.cfg.BatchMax }

// ShardOf maps a client ID to its shard. The ID is mixed
// (splitmix64-style) first so adjacent client IDs still spread across
// lanes.
func (s *Server[T]) ShardOf(clientID uint64) int {
	z := clientID + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(len(s.shards)))
}

// Submit runs admission control for one decoded request at monotonic
// time nowNanos (the binding's arrival clock, not trusted time). A
// shed request returns (response, true): the caller must send the
// explicit overload response now. An admitted request returns
// (zero, false) and is answered by a later Drain. Allocation-free
// except the first request of a never-seen client (its token bucket).
//
//triad:hotpath
func (s *Server[T]) Submit(nowNanos int64, req wire.TimeRequest, to T) (wire.TimeResponse, bool) {
	s.received.Add(1)
	sh := s.shards[s.ShardOf(req.ClientID)]
	sh.mu.Lock()
	if s.cfg.RatePerClient > 0 && !sh.takeToken(req.ClientID, nowNanos, s.cfg.RatePerClient, s.cfg.RateBurst) {
		sh.mu.Unlock()
		s.shedRate.Add(1)
		return shedResponse(req), true
	}
	if sh.n == len(sh.ring) {
		sh.mu.Unlock()
		s.shedQueue.Add(1)
		return shedResponse(req), true
	}
	idx := sh.head + sh.n
	if idx >= len(sh.ring) {
		idx -= len(sh.ring)
	}
	p := &sh.ring[idx]
	p.to = to
	p.op = 0
	p.clientID = req.ClientID
	p.seq = req.Seq
	p.flags = req.Flags
	p.hash = req.Hash
	p.enqueuedNanos = nowNanos
	sh.n++
	sh.mu.Unlock()
	s.queued.Add(1)
	return wire.TimeResponse{}, false
}

// SubmitCommit runs admission control for one decoded commit request —
// the same shard queues, token buckets, and shedding as Submit, so a
// client cannot dodge its rate limit by switching request families. A
// shed or immediately-decided request returns (response, true); an
// admitted one returns (zero, false) and is answered by a later Drain.
// With no Vault configured, every commit request is answered
// CommitUnavailable up front.
//
//triad:hotpath
func (s *Server[T]) SubmitCommit(nowNanos int64, req wire.CommitRequest, to T) (wire.CommitResponse, bool) {
	s.received.Add(1)
	if s.cfg.Vault == nil {
		s.unavailable.Add(1)
		return wire.CommitResponse{Kind: req.Kind, ClientID: req.ClientID, Seq: req.Seq, Verdict: wire.CommitUnavailable}, true
	}
	sh := s.shards[s.ShardOf(req.ClientID)]
	sh.mu.Lock()
	if s.cfg.RatePerClient > 0 && !sh.takeToken(req.ClientID, nowNanos, s.cfg.RatePerClient, s.cfg.RateBurst) {
		sh.mu.Unlock()
		s.shedRate.Add(1)
		return shedCommitResponse(req), true
	}
	if sh.n == len(sh.ring) {
		sh.mu.Unlock()
		s.shedQueue.Add(1)
		return shedCommitResponse(req), true
	}
	idx := sh.head + sh.n
	if idx >= len(sh.ring) {
		idx -= len(sh.ring)
	}
	p := &sh.ring[idx]
	p.to = to
	p.op = req.Kind
	p.clientID = req.ClientID
	p.seq = req.Seq
	p.flags = req.Flags
	p.hash = req.Hash
	p.unlockNanos = req.UnlockNanos
	// Parse the presented token once at admission; a malformed length
	// is impossible (the wire field is exactly TokenSize).
	p.ctok, _ = commit.UnmarshalToken(req.Token[:])
	p.enqueuedNanos = nowNanos
	sh.n++
	sh.mu.Unlock()
	s.queued.Add(1)
	return wire.CommitResponse{}, false
}

// shedResponse builds the explicit early-shed answer.
func shedResponse(req wire.TimeRequest) wire.TimeResponse {
	return wire.TimeResponse{ClientID: req.ClientID, Seq: req.Seq, Status: wire.StatusOverloaded}
}

// shedCommitResponse is its commit-family counterpart.
func shedCommitResponse(req wire.CommitRequest) wire.CommitResponse {
	return wire.CommitResponse{Kind: req.Kind, ClientID: req.ClientID, Seq: req.Seq, Verdict: wire.CommitOverloaded}
}

// takeToken refills and debits one client's bucket; called under the
// shard lock.
func (sh *shard[T]) takeToken(clientID uint64, nowNanos int64, rate, burst float64) bool {
	b := sh.buckets[clientID]
	if b == nil {
		b = &bucket{tokens: burst, lastNanos: nowNanos}
		sh.buckets[clientID] = b
	} else if elapsed := nowNanos - b.lastNanos; elapsed > 0 {
		b.tokens += rate * float64(elapsed) / 1e9
		if b.tokens > burst {
			b.tokens = burst
		}
		b.lastNanos = nowNanos
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Drain serves one batch from shard i: it pops up to BatchMax queued
// requests, reads trusted time ONCE, and appends the finished
// responses to out (reused scratch; the call allocates nothing when
// out has capacity). nowNanos is the binding's monotonic clock, used
// for queue-wait accounting. When the trusted clock cannot serve, the
// whole batch is answered StatusUnavailable — the read would not have
// succeeded for any of them.
//
// Drain may run concurrently with Submit and with Drains of other
// shards, but not with another Drain of the same shard: each shard has
// one batch scratch, matching the bindings' one-drainer-per-shard
// structure.
//
//triad:hotpath
func (s *Server[T]) Drain(i int, nowNanos int64, out []Delivery[T]) []Delivery[T] {
	sh := s.shards[i]
	sh.mu.Lock()
	n := sh.n
	if n > s.cfg.BatchMax {
		n = s.cfg.BatchMax
	}
	if n == 0 {
		sh.mu.Unlock()
		return out
	}
	batch := sh.batch[:0]
	for k := 0; k < n; k++ {
		batch = append(batch, sh.ring[sh.head])
		sh.ring[sh.head] = pending[T]{} // drop any reply-address reference
		sh.head++
		if sh.head == len(sh.ring) {
			sh.head = 0
		}
	}
	sh.n -= n
	sh.batch = batch
	sh.mu.Unlock()

	nanos, err := s.cfg.Clock.TrustedNow()
	s.batches.Add(1)
	for k := range batch {
		p := &batch[k]
		if p.op >= wire.KindCommitLock {
			// Commit operations are decided by the vault, which reads
			// the clock itself: an unlock must see the vault's
			// high-water rollback checks, so the batch read above does
			// not apply.
			if s.cfg.QueueWait != nil {
				s.cfg.QueueWait.Record(nowNanos - p.enqueuedNanos)
			}
			out = append(out, Delivery[T]{To: p.to, IsCommit: true, Commit: s.serveCommit(p)})
			continue
		}
		resp := wire.TimeResponse{ClientID: p.clientID, Seq: p.seq}
		if err != nil {
			resp.Status = wire.StatusUnavailable
			s.unavailable.Add(1)
		} else {
			resp.Status = wire.StatusOK
			resp.Nanos = nanos
			if p.flags&wire.FlagWantToken != 0 && s.cfg.Stamper != nil {
				if tok, terr := s.cfg.Stamper.IssueAt(p.hash, nanos); terr == nil {
					tok.MarshalInto(resp.Token[:])
					resp.HasToken = true
					s.tokens.Add(1)
				}
			}
			s.served.Add(1)
		}
		if s.cfg.QueueWait != nil {
			s.cfg.QueueWait.Record(nowNanos - p.enqueuedNanos)
		}
		out = append(out, Delivery[T]{To: p.to, Resp: resp})
	}
	return out
}

// serveCommit answers one drained commit operation against the vault.
// Verdict-specific fields follow the wire contract: an OK lock carries
// the minted token; unlock/status answers echo the token's unlock time
// and report the deciding trusted now; every answer carries the
// vault's current epoch. Decided operations count as Served,
// clock-undecidable ones as Unavailable.
//
//triad:hotpath
func (s *Server[T]) serveCommit(p *pending[T]) wire.CommitResponse {
	v := s.cfg.Vault
	resp := wire.CommitResponse{Kind: p.op, ClientID: p.clientID, Seq: p.seq}
	switch p.op {
	case wire.KindCommitLock:
		tok, vd := v.Lock(p.hash, p.unlockNanos, p.flags)
		resp.Verdict = wire.CommitVerdict(vd)
		if vd == commit.OK {
			tok.MarshalInto(resp.Token[:])
			resp.Nanos = tok.IssuedNanos
			resp.UnlockNanos = tok.UnlockNanos
		}
	case wire.KindCommitUnlock:
		now, vd := v.Unlock(p.ctok)
		resp.Verdict = wire.CommitVerdict(vd)
		resp.Nanos = now
		resp.UnlockNanos = p.ctok.UnlockNanos
	case wire.KindCommitStatus:
		now, vd := v.Status(p.ctok)
		resp.Verdict = wire.CommitVerdict(vd)
		resp.Nanos = now
		resp.UnlockNanos = p.ctok.UnlockNanos
	default:
		// Unreachable: SubmitCommit only queues decoded commit kinds.
		resp.Verdict = wire.CommitBadToken
	}
	resp.Epoch = v.Epoch()
	if resp.Verdict == wire.CommitUnavailable {
		s.unavailable.Add(1)
	} else {
		s.served.Add(1)
	}
	return resp
}

// Pending reports shard i's current queue length.
func (s *Server[T]) Pending(i int) int {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.n
}

// Counters snapshots the cumulative tallies.
func (s *Server[T]) Counters() Counters {
	return Counters{
		Received:        s.received.Load(),
		Queued:          s.queued.Load(),
		Served:          s.served.Load(),
		ShedQueueFull:   s.shedQueue.Load(),
		ShedRateLimited: s.shedRate.Load(),
		Unavailable:     s.unavailable.Load(),
		TokensIssued:    s.tokens.Load(),
		Batches:         s.batches.Load(),
	}
}
