package serve

import (
	"crypto/sha256"
	"errors"
	"testing"
	"time"

	"triadtime/internal/metrics"
	"triadtime/internal/wire"
	"triadtime/tsa"
)

// fixedClock counts TrustedNow reads, the quantity batching amortizes.
type fixedClock struct {
	nanos int64
	err   error
	reads int
}

func (c *fixedClock) TrustedNow() (int64, error) {
	c.reads++
	return c.nanos, c.err
}

func newTestServer(t *testing.T, cfg Config) (*Server[int], *fixedClock) {
	t.Helper()
	clk := &fixedClock{nanos: 42e9}
	cfg.Clock = clk
	s, err := New[int](cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, clk
}

func TestNewRequiresClock(t *testing.T) {
	if _, err := New[int](Config{}); err == nil {
		t.Fatal("server without clock accepted")
	}
	if _, err := New[int](Config{Clock: &fixedClock{}, RatePerClient: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// drainAll drains every shard once and returns the deliveries.
func drainAll(s *Server[int], now int64) []Delivery[int] {
	var out []Delivery[int]
	for i := 0; i < s.Shards(); i++ {
		out = s.Drain(i, now, out)
	}
	return out
}

func TestBatchingOneClockReadPerShardDrain(t *testing.T) {
	s, clk := newTestServer(t, Config{Shards: 2, BatchMax: 64})
	const reqs = 40
	for i := 0; i < reqs; i++ {
		resp, shed := s.Submit(1000, wire.TimeRequest{ClientID: uint64(i), Seq: uint64(i)}, i)
		if shed {
			t.Fatalf("request %d shed: %+v", i, resp)
		}
	}
	out := drainAll(s, 2000)
	if len(out) != reqs {
		t.Fatalf("%d deliveries, want %d", len(out), reqs)
	}
	// One trusted read per non-empty shard drain, not per request.
	if clk.reads != 2 {
		t.Fatalf("%d TrustedNow reads for %d requests over 2 shards, want 2", clk.reads, reqs)
	}
	seen := map[int]bool{}
	for _, d := range out {
		if d.Resp.Status != wire.StatusOK || d.Resp.Nanos != 42e9 {
			t.Fatalf("bad response: %+v", d.Resp)
		}
		if d.Resp.ClientID != uint64(d.To) || d.Resp.Seq != uint64(d.To) {
			t.Fatalf("response misrouted: %+v to %d", d.Resp, d.To)
		}
		seen[d.To] = true
	}
	if len(seen) != reqs {
		t.Fatalf("%d distinct recipients, want %d", len(seen), reqs)
	}
	c := s.Counters()
	if c.Received != reqs || c.Queued != reqs || c.Served != reqs || c.Batches != 2 || c.Shed() != 0 {
		t.Fatalf("counters off: %s", c.Summary())
	}
}

func TestQueueFullShedsExplicitly(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 1, QueueDepth: 3})
	shedCount := 0
	for i := 0; i < 5; i++ {
		resp, shed := s.Submit(0, wire.TimeRequest{ClientID: 7, Seq: uint64(i)}, i)
		if shed {
			shedCount++
			if resp.Status != wire.StatusOverloaded || resp.Seq != uint64(i) || resp.ClientID != 7 {
				t.Fatalf("shed response %+v", resp)
			}
		}
	}
	if shedCount != 2 {
		t.Fatalf("%d shed, want 2", shedCount)
	}
	if got := s.Counters().ShedQueueFull; got != 2 {
		t.Fatalf("ShedQueueFull=%d, want 2", got)
	}
	// The queued 3 still get served: shedding is early, not destructive.
	if out := drainAll(s, 0); len(out) != 3 {
		t.Fatalf("%d served after shed, want 3", len(out))
	}
}

func TestPerClientRateLimiting(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 1, RatePerClient: 2, RateBurst: 2})
	submit := func(client uint64, now int64) bool {
		resp, shed := s.Submit(now, wire.TimeRequest{ClientID: client}, 0)
		if shed && resp.Status != wire.StatusOverloaded {
			t.Fatalf("shed with status %v", resp.Status)
		}
		return !shed
	}
	// Burst of 2 admitted, the rest of the instant shed.
	for i := 0; i < 2; i++ {
		if !submit(1, 0) {
			t.Fatalf("burst request %d shed", i)
		}
	}
	if submit(1, 0) {
		t.Fatal("burst exceeded but admitted")
	}
	// An unrelated client is unaffected.
	if !submit(2, 0) {
		t.Fatal("independent client shed")
	}
	// Half a second refills one token at 2/s.
	if !submit(1, int64(500*time.Millisecond)) {
		t.Fatal("refilled token not granted")
	}
	if submit(1, int64(500*time.Millisecond)) {
		t.Fatal("second token granted without refill")
	}
	if got := s.Counters().ShedRateLimited; got != 2 {
		t.Fatalf("ShedRateLimited=%d, want 2", got)
	}
}

func TestClockUnavailableAnswersWholeBatch(t *testing.T) {
	s, clk := newTestServer(t, Config{Shards: 1})
	clk.err = errors.New("tainted")
	for i := 0; i < 4; i++ {
		s.Submit(0, wire.TimeRequest{ClientID: uint64(i), Seq: 9}, i)
	}
	out := drainAll(s, 0)
	if len(out) != 4 {
		t.Fatalf("%d deliveries, want 4", len(out))
	}
	for _, d := range out {
		if d.Resp.Status != wire.StatusUnavailable {
			t.Fatalf("status %v, want unavailable", d.Resp.Status)
		}
	}
	c := s.Counters()
	if c.Unavailable != 4 || c.Served != 0 {
		t.Fatalf("counters off: %s", c.Summary())
	}
}

func TestTokenIssuanceStampsBatchRead(t *testing.T) {
	clk := &fixedClock{nanos: 7e9}
	stamper, err := tsa.New(clk, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New[int](Config{Shards: 1, Clock: clk, Stamper: stamper})
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("the document")
	req := wire.TimeRequest{ClientID: 3, Seq: 1, Flags: wire.FlagWantToken, Hash: sha256.Sum256(doc)}
	s.Submit(0, req, 0)
	s.Submit(0, wire.TimeRequest{ClientID: 4, Seq: 2}, 0) // no token asked
	reads := clk.reads
	out := drainAll(s, 0)
	if clk.reads != reads+1 {
		t.Fatalf("token issuance read the clock again (%d extra reads)", clk.reads-reads)
	}
	var tokenResp, plainResp *Delivery[int]
	for i := range out {
		if out[i].Resp.HasToken {
			tokenResp = &out[i]
		} else {
			plainResp = &out[i]
		}
	}
	if tokenResp == nil || plainResp == nil {
		t.Fatalf("expected one token and one plain response, got %+v", out)
	}
	tok, ok := stamper.VerifyBytes(doc, tokenResp.Resp.Token[:])
	if !ok {
		t.Fatal("issued token failed verification")
	}
	if tok.Nanos != 7e9 || tokenResp.Resp.Nanos != 7e9 {
		t.Fatalf("token stamped %d, response %d, want the batch read 7e9", tok.Nanos, tokenResp.Resp.Nanos)
	}
	if got := s.Counters().TokensIssued; got != 1 {
		t.Fatalf("TokensIssued=%d, want 1", got)
	}
}

func TestQueueWaitRecorded(t *testing.T) {
	hist := metrics.NewLatencyHistogram()
	s, _ := newTestServer(t, Config{Shards: 1, QueueWait: hist})
	s.Submit(1000, wire.TimeRequest{ClientID: 1}, 0)
	drainAll(s, 51000)
	snap := hist.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("histogram count %d, want 1", snap.Count)
	}
	if snap.Sum != 50000 {
		t.Fatalf("recorded wait %d, want 50000", snap.Sum)
	}
}

func TestRingFIFOAcrossWraparound(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 1, QueueDepth: 4, BatchMax: 2})
	next := uint64(0)
	served := []uint64{}
	for round := 0; round < 5; round++ {
		for i := 0; i < 2; i++ {
			if _, shed := s.Submit(0, wire.TimeRequest{ClientID: 1, Seq: next}, 0); shed {
				t.Fatalf("unexpected shed at seq %d", next)
			}
			next++
		}
		for _, d := range s.Drain(0, 0, nil) {
			served = append(served, d.Resp.Seq)
		}
	}
	if len(served) != 10 {
		t.Fatalf("%d served, want 10", len(served))
	}
	for i, seq := range served {
		if seq != uint64(i) {
			t.Fatalf("FIFO broken: position %d served seq %d", i, seq)
		}
	}
}

func TestShardOfSpreadsClients(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 4})
	hit := make([]int, 4)
	for c := uint64(0); c < 1000; c++ {
		hit[s.ShardOf(c)]++
	}
	for i, n := range hit {
		if n < 100 {
			t.Fatalf("shard %d got only %d of 1000 sequential clients: %v", i, n, hit)
		}
	}
	// Sharding must be stable: the same client always lands on the same
	// lane, or FIFO-per-client would break.
	if s.ShardOf(12345) != s.ShardOf(12345) {
		t.Fatal("ShardOf unstable")
	}
}

func TestPending(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 1})
	for i := 0; i < 3; i++ {
		s.Submit(0, wire.TimeRequest{ClientID: 1, Seq: uint64(i)}, 0)
	}
	if got := s.Pending(0); got != 3 {
		t.Fatalf("Pending=%d, want 3", got)
	}
	drainAll(s, 0)
	if got := s.Pending(0); got != 0 {
		t.Fatalf("Pending after drain=%d, want 0", got)
	}
}
