package serve

import (
	"fmt"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
)

// SimConfig parameterizes a simulated serving endpoint.
type SimConfig struct {
	// Addr is the endpoint's address on the simulated network.
	Addr simnet.Addr
	// Key seals client traffic. Deliberately distinct from the protocol
	// cluster key: a client credential must not open protocol datagrams.
	Key []byte
	// Tick is the per-shard drain period. Default 1ms.
	Tick time.Duration
	// Server configures the underlying engine; Clock is required.
	Server Config
}

// SimBinding runs a Server on the deterministic simulation: it
// registers the serving address on the simulated network, decodes and
// admits sealed TimeRequests as they arrive, and drains every shard
// once per tick, sealing the batched responses back to their senders.
// Single-threaded like everything under the scheduler, so runs are
// reproducible byte-for-byte.
type SimBinding struct {
	srv   *Server[simnet.Addr]
	sched *sim.Scheduler
	net   *simnet.Network
	addr  simnet.Addr
	tick  simtime.Instant

	opener *wire.Opener
	sealer *wire.Sealer

	// Reused scratch: the per-packet and per-tick paths allocate only
	// what simnet itself copies. plain/sealBuf are sized for the larger
	// commit responses; stamp responses use a prefix.
	openBuf []byte
	plain   [wire.CommitResponseSize]byte
	sealBuf []byte
	out     []Delivery[simnet.Addr]
}

// NewSimBinding creates a simulated serving endpoint and registers it
// on the network. Call Start to begin the drain ticks.
func NewSimBinding(sched *sim.Scheduler, net *simnet.Network, cfg SimConfig) (*SimBinding, error) {
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	srv, err := New[simnet.Addr](cfg.Server)
	if err != nil {
		return nil, err
	}
	opener, err := wire.NewOpener(cfg.Key)
	if err != nil {
		return nil, fmt.Errorf("serve: client key: %w", err)
	}
	sealer, err := wire.NewSealer(cfg.Key, uint32(cfg.Addr))
	if err != nil {
		return nil, fmt.Errorf("serve: client key: %w", err)
	}
	b := &SimBinding{
		srv:     srv,
		sched:   sched,
		net:     net,
		addr:    cfg.Addr,
		tick:    simtime.FromDuration(cfg.Tick),
		opener:  opener,
		sealer:  sealer,
		openBuf: make([]byte, 0, wire.CommitRequestSize),
		sealBuf: make([]byte, 0, wire.CommitResponseSize+wire.SealedOverhead),
		out:     make([]Delivery[simnet.Addr], 0, cfg.Server.BatchMax*cfg.Server.Shards),
	}
	net.Register(cfg.Addr, b.handle)
	return b, nil
}

// Addr reports the serving endpoint's network address.
func (b *SimBinding) Addr() simnet.Addr { return b.addr }

// Server exposes the underlying engine (counters, queue-wait metrics).
func (b *SimBinding) Server() *Server[simnet.Addr] { return b.srv }

// Start schedules the first drain tick.
func (b *SimBinding) Start() {
	b.sched.After(b.tick, b.drainTick)
}

func (b *SimBinding) handle(pkt simnet.Packet) {
	plain, _, err := b.opener.OpenDatagramInto(b.openBuf, pkt.Payload)
	if err != nil {
		return // forged, replayed, or protocol-keyed traffic: drop silently
	}
	// The two request families are fixed-size and distinct, so the
	// plaintext length is the demultiplexer — same as the live path.
	switch len(plain) {
	case wire.TimeRequestSize:
		req, err := wire.UnmarshalTimeRequest(plain)
		if err != nil {
			return
		}
		if resp, shed := b.srv.Submit(int64(b.sched.Now()), req, pkt.From); shed {
			b.send(pkt.From, resp)
		}
	case wire.CommitRequestSize:
		req, err := wire.UnmarshalCommitRequest(plain)
		if err != nil {
			return
		}
		if resp, decided := b.srv.SubmitCommit(int64(b.sched.Now()), req, pkt.From); decided {
			b.sendCommit(pkt.From, resp)
		}
	}
}

func (b *SimBinding) drainTick() {
	now := int64(b.sched.Now())
	for i := 0; i < b.srv.Shards(); i++ {
		b.out = b.srv.Drain(i, now, b.out[:0])
		for k := range b.out {
			if b.out[k].IsCommit {
				b.sendCommit(b.out[k].To, b.out[k].Commit)
			} else {
				b.send(b.out[k].To, b.out[k].Resp)
			}
		}
	}
	b.sched.After(b.tick, b.drainTick)
}

func (b *SimBinding) send(to simnet.Addr, resp wire.TimeResponse) {
	resp.MarshalInto(b.plain[:])
	b.sealBuf = b.sealer.SealDatagramAppend(b.sealBuf[:0], b.plain[:wire.TimeResponseSize])
	b.net.Send(b.addr, to, b.sealBuf) // simnet copies the payload
}

func (b *SimBinding) sendCommit(to simnet.Addr, resp wire.CommitResponse) {
	resp.MarshalInto(b.plain[:])
	b.sealBuf = b.sealer.SealDatagramAppend(b.sealBuf[:0], b.plain[:wire.CommitResponseSize])
	b.net.Send(b.addr, to, b.sealBuf)
}
