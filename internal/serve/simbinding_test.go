package serve

import (
	"testing"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
)

// simClient is a simulated requester: it seals TimeRequests at a fixed
// offered rate and tallies the decoded responses.
type simClient struct {
	t      *testing.T
	sched  *sim.Scheduler
	net    *simnet.Network
	addr   simnet.Addr
	server simnet.Addr
	sealer *wire.Sealer
	opener *wire.Opener

	seq       uint64
	ok, shed  int
	unavail   int
	lastNanos int64
}

func newSimClient(t *testing.T, sched *sim.Scheduler, net *simnet.Network, key []byte, addr, server simnet.Addr) *simClient {
	t.Helper()
	sealer, err := wire.NewSealer(key, uint32(addr))
	if err != nil {
		t.Fatal(err)
	}
	opener, err := wire.NewOpener(key)
	if err != nil {
		t.Fatal(err)
	}
	c := &simClient{t: t, sched: sched, net: net, addr: addr, server: server, sealer: sealer, opener: opener}
	net.Register(addr, c.handle)
	return c
}

func (c *simClient) send() {
	req := wire.TimeRequest{ClientID: uint64(c.addr), Seq: c.seq}
	c.seq++
	var plain [wire.TimeRequestSize]byte
	req.MarshalInto(plain[:])
	c.net.Send(c.addr, c.server, c.sealer.SealDatagramAppend(nil, plain[:]))
}

func (c *simClient) handle(pkt simnet.Packet) {
	plain, sender, err := c.opener.OpenDatagramInto(nil, pkt.Payload)
	if err != nil {
		c.t.Fatalf("client %d: bad response datagram: %v", c.addr, err)
	}
	if sender != uint32(c.server) {
		c.t.Fatalf("client %d: response from sender %d, want %d", c.addr, sender, c.server)
	}
	resp, err := wire.UnmarshalTimeResponse(plain)
	if err != nil {
		c.t.Fatalf("client %d: bad response: %v", c.addr, err)
	}
	if resp.ClientID != uint64(c.addr) {
		c.t.Fatalf("client %d: response for client %d", c.addr, resp.ClientID)
	}
	switch resp.Status {
	case wire.StatusOK:
		c.ok++
		c.lastNanos = resp.Nanos
	case wire.StatusOverloaded:
		c.shed++
	case wire.StatusUnavailable:
		c.unavail++
	}
}

func TestSimBindingServesSealedTraffic(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1)
	net := simnet.New(sched, rng, simnet.Link{Base: 100 * time.Microsecond})
	key := []byte("serve-client-key-0123456789abcde")

	clock := ClockFunc(func() (int64, error) { return int64(sched.Now()), nil })
	b, err := NewSimBinding(sched, net, SimConfig{
		Addr:   150,
		Key:    key,
		Tick:   time.Millisecond,
		Server: Config{Shards: 2, Clock: clock},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()

	clients := []*simClient{
		newSimClient(t, sched, net, key, 1, b.Addr()),
		newSimClient(t, sched, net, key, 2, b.Addr()),
	}
	// Each client sends 5 requests, 2ms apart.
	for _, c := range clients {
		c := c
		for i := 0; i < 5; i++ {
			sched.At(simtime.FromDuration(time.Duration(i)*2*time.Millisecond), c.send)
		}
	}
	sched.RunUntil(simtime.FromSeconds(1))

	for _, c := range clients {
		if c.ok != 5 || c.shed != 0 || c.unavail != 0 {
			t.Fatalf("client %d: ok=%d shed=%d unavail=%d, want 5/0/0", c.addr, c.ok, c.shed, c.unavail)
		}
		// The served timestamp is the batch's trusted read: after the
		// request arrived, within the run.
		if c.lastNanos <= 0 || c.lastNanos > int64(simtime.FromSeconds(1)) {
			t.Fatalf("client %d: implausible served nanos %d", c.addr, c.lastNanos)
		}
	}
	counters := b.Server().Counters()
	if counters.Served != 10 || counters.Shed() != 0 {
		t.Fatalf("server counters: %s", counters.Summary())
	}
	// Batching engaged: 10 requests cost far fewer than 10 trusted
	// reads' worth of batches is not guaranteed at this trickle rate,
	// but every batch served at least one request.
	if counters.Batches == 0 || counters.Batches > counters.Served {
		t.Fatalf("batches=%d served=%d", counters.Batches, counters.Served)
	}
}

func TestSimBindingDropsForgedAndProtocolKeyedTraffic(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(2)
	net := simnet.New(sched, rng, simnet.DefaultLink())
	clientKey := []byte("serve-client-key-0123456789abcde")
	protoKey := []byte("cluster-protocol-key-0123456789a")

	clock := ClockFunc(func() (int64, error) { return int64(sched.Now()), nil })
	b, err := NewSimBinding(sched, net, SimConfig{
		Addr:   150,
		Key:    clientKey,
		Server: Config{Clock: clock},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()

	// Garbage, and a well-formed request sealed under the protocol key:
	// both must be dropped without a response.
	protoSealer, err := wire.NewSealer(protoKey, 3)
	if err != nil {
		t.Fatal(err)
	}
	var plain [wire.TimeRequestSize]byte
	wire.TimeRequest{ClientID: 3}.MarshalInto(plain[:])
	responded := false
	net.Register(3, func(simnet.Packet) { responded = true })
	sched.At(0, func() {
		net.Send(3, b.Addr(), []byte("not a sealed datagram at all........"))
		net.Send(3, b.Addr(), protoSealer.SealDatagramAppend(nil, plain[:]))
	})
	sched.RunUntil(simtime.FromSeconds(1))

	if responded {
		t.Fatal("binding answered unauthenticated traffic")
	}
	if c := b.Server().Counters(); c.Received != 0 {
		t.Fatalf("unauthenticated traffic reached the engine: %s", c.Summary())
	}
}
