package sim

import (
	"math"
	"math/rand/v2"
	"time"
)

// RNG is the simulation's deterministic randomness source. All stochastic
// models (network jitter, AEX gaps, INC noise) draw from RNGs forked off
// one experiment seed, so a run is reproducible bit-for-bit.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent generator from this one, labelled by id so
// that adding a consumer does not perturb the streams of existing ones.
func (g *RNG) Fork(id uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64()^id, g.r.Uint64()+id))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform sample in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit sample.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// NormFloat64 returns a standard-normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Gaussian returns a normal sample with the given mean and stddev.
func (g *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Exponential returns an exponential sample with the given mean.
func (g *RNG) Exponential(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(-math.Log(1-g.r.Float64()) * float64(mean))
}

// LogNormal returns exp(N(mu, sigma)), the long-tailed distribution used
// for network-delay jitter.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Gaussian(mu, sigma))
}

// Choice returns a uniformly random element of xs. It panics on an empty
// slice, which is always a caller bug.
func Choice[T any](g *RNG, xs []T) T {
	return xs[g.IntN(len(xs))]
}

// Jitter returns base scaled by a uniform factor in [1-spread, 1+spread].
func (g *RNG) Jitter(base time.Duration, spread float64) time.Duration {
	f := 1 + spread*(2*g.r.Float64()-1)
	return time.Duration(f * float64(base))
}
