package sim

import (
	"math"
	"testing"
	"time"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(7)
	f1 := g.Fork(1)
	f2 := g.Fork(2)
	equal := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("forked streams coincide on %d/100 draws", equal)
	}
}

func TestRNGGaussianMoments(t *testing.T) {
	g := NewRNG(1)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := g.Gaussian(10, 2)
		sum += x
		sq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Errorf("stddev = %v, want ~2", std)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	g := NewRNG(2)
	const n = 20000
	var sum time.Duration
	for i := 0; i < n; i++ {
		d := g.Exponential(time.Second)
		if d < 0 {
			t.Fatal("exponential sample must be non-negative")
		}
		sum += d
	}
	mean := float64(sum) / n
	if math.Abs(mean-float64(time.Second)) > 0.05*float64(time.Second) {
		t.Errorf("mean = %v, want ~1s", time.Duration(mean))
	}
	if g.Exponential(0) != 0 || g.Exponential(-time.Second) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if g.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal sample must be positive")
		}
	}
}

func TestChoiceUniform(t *testing.T) {
	g := NewRNG(4)
	// The Triad-like AEX gap values.
	opts := []time.Duration{10 * time.Millisecond, 532 * time.Millisecond, 1590 * time.Millisecond}
	counts := map[time.Duration]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[Choice(g, opts)]++
	}
	for _, o := range opts {
		frac := float64(counts[o]) / n
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Errorf("P(%v) = %v, want ~1/3", o, frac)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	g := NewRNG(5)
	base := 100 * time.Microsecond
	for i := 0; i < 1000; i++ {
		d := g.Jitter(base, 0.2)
		if d < 80*time.Microsecond || d > 120*time.Microsecond {
			t.Fatalf("Jitter out of bounds: %v", d)
		}
	}
	if got := g.Jitter(base, 0); got != base {
		t.Errorf("zero spread should return base, got %v", got)
	}
}

func TestRNGFloat64AndIntNRanges(t *testing.T) {
	g := NewRNG(6)
	for i := 0; i < 1000; i++ {
		if f := g.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := g.IntN(10); n < 0 || n >= 10 {
			t.Fatalf("IntN out of range: %v", n)
		}
	}
	var w float64
	for i := 0; i < 10000; i++ {
		w += g.NormFloat64()
	}
	if math.Abs(w/10000) > 0.05 {
		t.Errorf("NormFloat64 mean = %v, want ~0", w/10000)
	}
}
