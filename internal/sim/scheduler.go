// Package sim is a deterministic discrete-event simulation engine. Every
// experiment in the reproduction runs on it: simulated hours of protocol
// time execute in milliseconds, and a fixed seed reproduces the exact
// event interleaving, which is essential for debugging attack scenarios.
package sim

import (
	"fmt"

	"triadtime/internal/simtime"
)

// Event is a cancellable handle to a scheduled callback. It is a small
// value (no per-event heap object): the scheduler stores event state in
// an internal slot array and hands out generation-stamped indices, so a
// stale handle — one whose event already fired or was cancelled — can
// never touch a reused slot. The zero Event is inert: Cancel ignores it.
type Event struct {
	s   *Scheduler
	id  uint32 // slot index + 1; 0 marks the zero (inert) handle
	gen uint32 // slot generation at schedule time
}

// At reports when the event fires. Once the event has fired or been
// cancelled the handle is stale and At reports the epoch.
func (e Event) At() simtime.Instant {
	if e.s == nil || e.id == 0 {
		return simtime.Epoch
	}
	sl := &e.s.slots[e.id-1]
	if sl.gen != e.gen || sl.pos < 0 {
		return simtime.Epoch
	}
	return sl.at
}

// slot is the in-place storage of one scheduled (or free) event.
type slot struct {
	at       simtime.Instant
	seq      uint64 // tie-breaker: schedule order at equal instants
	fn       func()
	gen      uint32 // bumped on release; invalidates outstanding handles
	pos      int32  // index in Scheduler.heap, -1 while free
	nextFree int32  // next slot in the free list, -1 at the tail
}

// heapArity is the fan-out of the event queue. A 4-ary heap halves the
// tree depth of a binary heap; with cheap (at, seq) comparisons the
// extra per-level compares are better than the extra levels, and the
// node's children share a cache line.
const heapArity = 4

// Scheduler is the simulation's event loop. It is single-threaded: all
// simulated components run inside callbacks dispatched by Run/Step, so no
// locking is needed anywhere in the simulated stack.
//
// The pending queue is a hand-specialized index-addressed min-heap over
// the slot array ordered by (at, seq), with freed slots recycled through
// an intrusive free list. Steady-state At/After/Step/Cancel therefore
// perform zero heap allocations: the slot and heap arrays only grow when
// the number of simultaneously pending events exceeds every previous
// high-water mark. Because (at, seq) is a total order (seq is unique),
// events fire in exactly the same sequence as any other stable queue —
// the heap shape is not observable.
type Scheduler struct {
	now    simtime.Instant
	slots  []slot
	heap   []uint32 // slot indices, min-heap on (at, seq)
	free   int32    // head of the free-slot list, -1 when empty
	seq    uint64
	halted bool
}

// NewScheduler returns a scheduler positioned at the epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{free: -1}
}

// Now reports the current simulated reference time.
func (s *Scheduler) Now() simtime.Instant { return s.now }

// Pending reports the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.heap) }

// At schedules fn to run at the given instant. Scheduling in the past
// panics: it is always a modelling bug, and silently reordering events
// would destroy determinism.
func (s *Scheduler) At(at simtime.Instant, fn func()) Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, s.now))
	}
	idx := s.alloc()
	sl := &s.slots[idx]
	sl.at = at
	sl.seq = s.seq
	sl.fn = fn
	s.seq++
	s.push(idx)
	return Event{s: s, id: idx + 1, gen: sl.gen}
}

// After schedules fn to run d after the current simulated time. Negative
// durations are treated as zero.
func (s *Scheduler) After(d simtime.Instant, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling the zero Event, an event
// that already fired, or one already cancelled is a no-op — the
// generation stamp makes stale handles harmless even after their slot
// has been reused by a later event.
func (s *Scheduler) Cancel(e Event) {
	if e.s != s || e.id == 0 {
		return
	}
	idx := e.id - 1
	sl := &s.slots[idx]
	if sl.gen != e.gen || sl.pos < 0 {
		return
	}
	s.remove(int(sl.pos))
	s.release(idx)
}

// Step fires the next pending event and advances simulated time to it.
// It reports whether an event was fired.
//
//triad:hotpath
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	idx := s.popRoot()
	sl := &s.slots[idx]
	s.now = sl.at
	fn := sl.fn
	s.release(idx) // before fn: the callback may reschedule into this slot
	fn()
	return true
}

// RunUntil fires events in order until simulated time reaches deadline or
// the queue drains. Events scheduled exactly at the deadline fire. Time
// always ends at the deadline even if the queue drained earlier, so
// successive RunUntil calls see a monotone clock.
func (s *Scheduler) RunUntil(deadline simtime.Instant) {
	s.halted = false
	for !s.halted && len(s.heap) > 0 && s.slots[s.heap[0]].at <= deadline {
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// RunUntilIdle fires events until none remain or Halt is called. Only
// safe for models that quiesce; recurring processes never do.
func (s *Scheduler) RunUntilIdle() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// Halt stops the current Run* call after the in-flight event returns.
func (s *Scheduler) Halt() { s.halted = true }

// alloc takes a slot off the free list, growing the array only when no
// freed slot is available (i.e. at a new pending high-water mark).
func (s *Scheduler) alloc() uint32 {
	if s.free >= 0 {
		idx := uint32(s.free)
		s.free = s.slots[idx].nextFree
		return idx
	}
	s.slots = append(s.slots, slot{pos: -1, nextFree: -1})
	return uint32(len(s.slots) - 1)
}

// release returns a slot to the free list. Dropping fn here both frees
// the callback's captures promptly and prevents a stale closure from
// ever firing out of a recycled slot.
func (s *Scheduler) release(idx uint32) {
	sl := &s.slots[idx]
	sl.fn = nil
	sl.gen++
	sl.pos = -1
	sl.nextFree = s.free
	s.free = int32(idx)
}

// less orders slots by firing time, then schedule order: a strict total
// order, so the firing sequence is independent of the heap's shape.
func (s *Scheduler) less(a, b uint32) bool {
	sa, sb := &s.slots[a], &s.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (s *Scheduler) push(idx uint32) {
	s.heap = append(s.heap, idx)
	s.slots[idx].pos = int32(len(s.heap) - 1)
	s.siftUp(len(s.heap) - 1)
}

// popRoot removes and returns the minimum slot index.
func (s *Scheduler) popRoot() uint32 {
	h := s.heap
	root := h[0]
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
		s.slots[h[0]].pos = 0
	}
	s.heap = h[:n]
	if n > 1 {
		s.siftDown(0)
	}
	return root
}

// remove deletes the heap entry at position i.
func (s *Scheduler) remove(i int) {
	h := s.heap
	n := len(h) - 1
	if i == n {
		s.heap = h[:n]
		return
	}
	moved := h[n]
	h[i] = moved
	s.slots[moved].pos = int32(i)
	s.heap = h[:n]
	s.siftDown(i)
	if s.slots[moved].pos == int32(i) {
		s.siftUp(i)
	}
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	idx := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !s.less(idx, h[parent]) {
			break
		}
		h[i] = h[parent]
		s.slots[h[i]].pos = int32(i)
		i = parent
	}
	h[i] = idx
	s.slots[idx].pos = int32(i)
}

func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	idx := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(h[c], h[min]) {
				min = c
			}
		}
		if !s.less(h[min], idx) {
			break
		}
		h[i] = h[min]
		s.slots[h[i]].pos = int32(i)
		i = min
	}
	h[i] = idx
	s.slots[idx].pos = int32(i)
}
