// Package sim is a deterministic discrete-event simulation engine. Every
// experiment in the reproduction runs on it: simulated hours of protocol
// time execute in milliseconds, and a fixed seed reproduces the exact
// event interleaving, which is essential for debugging attack scenarios.
package sim

import (
	"container/heap"
	"fmt"

	"triadtime/internal/simtime"
)

// Event is a scheduled callback. Cancel it via Scheduler.Cancel.
type Event struct {
	at    simtime.Instant
	seq   uint64 // tie-breaker: schedule order at equal instants
	index int    // heap index, -1 once removed
	fn    func()
}

// At reports when the event fires.
func (e *Event) At() simtime.Instant { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is the simulation's event loop. It is single-threaded: all
// simulated components run inside callbacks dispatched by Run/Step, so no
// locking is needed anywhere in the simulated stack.
type Scheduler struct {
	now    simtime.Instant
	queue  eventQueue
	seq    uint64
	halted bool
}

// NewScheduler returns a scheduler positioned at the epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current simulated reference time.
func (s *Scheduler) Now() simtime.Instant { return s.now }

// Pending reports the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at the given instant. Scheduling in the past
// panics: it is always a modelling bug, and silently reordering events
// would destroy determinism.
func (s *Scheduler) At(at simtime.Instant, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, s.now))
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current simulated time. Negative
// durations are treated as zero.
func (s *Scheduler) After(d simtime.Instant, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired
// or was already cancelled is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
}

// Step fires the next pending event and advances simulated time to it.
// It reports whether an event was fired.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil fires events in order until simulated time reaches deadline or
// the queue drains. Events scheduled exactly at the deadline fire. Time
// always ends at the deadline even if the queue drained earlier, so
// successive RunUntil calls see a monotone clock.
func (s *Scheduler) RunUntil(deadline simtime.Instant) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// RunUntilIdle fires events until none remain or Halt is called. Only
// safe for models that quiesce; recurring processes never do.
func (s *Scheduler) RunUntilIdle() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// Halt stops the current Run* call after the in-flight event returns.
func (s *Scheduler) Halt() { s.halted = true }
