package sim

import (
	"testing"
	"testing/quick"
	"time"

	"triadtime/internal/simtime"
)

func after(d time.Duration) simtime.Instant { return simtime.FromDuration(d) }

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(after(3*time.Second), func() { order = append(order, 3) })
	s.At(after(1*time.Second), func() { order = append(order, 1) })
	s.At(after(2*time.Second), func() { order = append(order, 2) })
	s.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if got := s.Now(); got != after(3*time.Second) {
		t.Errorf("Now() = %v, want t+3s", got)
	}
}

func TestSchedulerStableTieBreaking(t *testing.T) {
	s := NewScheduler()
	var order []int
	at := after(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func() { order = append(order, i) })
	}
	s.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of schedule order: %v", order)
		}
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(after(time.Second), func() {})
	s.RunUntilIdle()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	s.At(after(time.Millisecond), func() {})
}

func TestSchedulerAfterNegativeClamps(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-5, func() { fired = true })
	s.RunUntilIdle()
	if !fired {
		t.Error("After with negative delay should fire immediately")
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(after(time.Second), func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	s.Cancel(nil)
	s.RunUntilIdle()
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
}

func TestSchedulerCancelAmongMany(t *testing.T) {
	s := NewScheduler()
	var got []int
	events := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		events[i] = s.At(after(time.Duration(i+1)*time.Second), func() { got = append(got, i) })
	}
	s.Cancel(events[1])
	s.Cancel(events[3])
	s.RunUntilIdle()
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []int
	s.At(after(1*time.Second), func() { fired = append(fired, 1) })
	s.At(after(2*time.Second), func() { fired = append(fired, 2) })
	s.At(after(3*time.Second), func() { fired = append(fired, 3) })
	s.RunUntil(after(2 * time.Second))
	if len(fired) != 2 {
		t.Errorf("fired = %v, want events at 1s and 2s (deadline inclusive)", fired)
	}
	if s.Now() != after(2*time.Second) {
		t.Errorf("Now() = %v, want t+2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	// Clock advances to the deadline even with no events in range.
	s2 := NewScheduler()
	s2.RunUntil(after(time.Minute))
	if s2.Now() != after(time.Minute) {
		t.Errorf("idle RunUntil: Now() = %v, want t+1m", s2.Now())
	}
}

func TestSchedulerEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.At(after(time.Second), func() {
		order = append(order, "first")
		s.After(simtime.FromDuration(time.Second), func() {
			order = append(order, "second")
		})
	})
	s.RunUntilIdle()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("order = %v", order)
	}
	if s.Now() != after(2*time.Second) {
		t.Errorf("Now() = %v, want t+2s", s.Now())
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(after(time.Duration(i)*time.Second), func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.RunUntilIdle()
	if count != 3 {
		t.Errorf("count = %d, want 3 (halted)", count)
	}
	// Run can resume after a halt.
	s.RunUntilIdle()
	if count != 10 {
		t.Errorf("count = %d, want 10 after resume", count)
	}
}

func TestSchedulerDeterministicOrderProperty(t *testing.T) {
	// Property: two schedulers fed identical schedules fire identically.
	f := func(delaysMs []uint16) bool {
		run := func() []int {
			s := NewScheduler()
			var order []int
			for i, d := range delaysMs {
				i := i
				s.At(after(time.Duration(d)*time.Millisecond), func() {
					order = append(order, i)
				})
			}
			s.RunUntilIdle()
			return order
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventAt(t *testing.T) {
	s := NewScheduler()
	e := s.At(after(5*time.Second), func() {})
	if e.At() != after(5*time.Second) {
		t.Errorf("At() = %v", e.At())
	}
}

func BenchmarkSchedulerEventThroughput(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(simtime.FromDuration(time.Microsecond), func() {})
		s.Step()
	}
}

func BenchmarkSchedulerDeepQueue(b *testing.B) {
	// Sustained 1k-event queue: push one, pop one.
	s := NewScheduler()
	for i := 0; i < 1000; i++ {
		s.After(simtime.FromDuration(time.Duration(i)*time.Microsecond), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(simtime.FromDuration(time.Millisecond), func() {})
		s.Step()
	}
}
