package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"triadtime/internal/simtime"
)

func after(d time.Duration) simtime.Instant { return simtime.FromDuration(d) }

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(after(3*time.Second), func() { order = append(order, 3) })
	s.At(after(1*time.Second), func() { order = append(order, 1) })
	s.At(after(2*time.Second), func() { order = append(order, 2) })
	s.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if got := s.Now(); got != after(3*time.Second) {
		t.Errorf("Now() = %v, want t+3s", got)
	}
}

func TestSchedulerStableTieBreaking(t *testing.T) {
	s := NewScheduler()
	var order []int
	at := after(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func() { order = append(order, i) })
	}
	s.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of schedule order: %v", order)
		}
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(after(time.Second), func() {})
	s.RunUntilIdle()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	s.At(after(time.Millisecond), func() {})
}

func TestSchedulerAfterNegativeClamps(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-5, func() { fired = true })
	s.RunUntilIdle()
	if !fired {
		t.Error("After with negative delay should fire immediately")
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(after(time.Second), func() { fired = true })
	s.Cancel(e)
	s.Cancel(e)       // double cancel is a no-op
	s.Cancel(Event{}) // zero handle is inert
	s.RunUntilIdle()
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
}

func TestSchedulerCancelAmongMany(t *testing.T) {
	s := NewScheduler()
	var got []int
	events := make([]Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		events[i] = s.At(after(time.Duration(i+1)*time.Second), func() { got = append(got, i) })
	}
	s.Cancel(events[1])
	s.Cancel(events[3])
	s.RunUntilIdle()
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestSchedulerCancelReschedulesIntoFreeSlot pins the free-list and
// generation mechanics: a cancelled event's slot is recycled by the next
// schedule, and the stale handle to the old occupant must not be able to
// cancel (or report on) the new one.
func TestSchedulerCancelReschedulesIntoFreeSlot(t *testing.T) {
	s := NewScheduler()
	stale := s.At(after(time.Second), func() { t.Error("cancelled event fired") })
	s.Cancel(stale)
	fired := false
	fresh := s.At(after(2*time.Second), func() { fired = true })
	if fresh.id != stale.id {
		t.Fatalf("slot not recycled: fresh id %d, stale id %d", fresh.id, stale.id)
	}
	if fresh.gen == stale.gen {
		t.Fatal("recycled slot kept its generation; stale handles would alias")
	}
	s.Cancel(stale) // stale handle aims at the recycled slot: must be a no-op
	if stale.At() != simtime.Epoch {
		t.Errorf("stale At() = %v, want epoch", stale.At())
	}
	if fresh.At() != after(2*time.Second) {
		t.Errorf("fresh At() = %v, want t+2s", fresh.At())
	}
	s.RunUntilIdle()
	if !fired {
		t.Error("rescheduled event did not survive the stale cancel")
	}
}

// TestSchedulerCancelHeadMidRun cancels the queue's head from inside a
// running callback: the head's heap root slot is vacated while RunUntil
// is iterating on it.
func TestSchedulerCancelHeadMidRun(t *testing.T) {
	s := NewScheduler()
	var order []string
	var b Event
	s.At(after(1*time.Second), func() {
		order = append(order, "a")
		s.Cancel(b) // b is now the head of the queue
	})
	b = s.At(after(2*time.Second), func() { order = append(order, "b") })
	s.At(after(3*time.Second), func() { order = append(order, "c") })
	s.RunUntil(after(time.Minute))
	if len(order) != 2 || order[0] != "a" || order[1] != "c" {
		t.Errorf("order = %v, want [a c]", order)
	}
	if s.Now() != after(time.Minute) {
		t.Errorf("Now() = %v, want t+1m", s.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []int
	s.At(after(1*time.Second), func() { fired = append(fired, 1) })
	s.At(after(2*time.Second), func() { fired = append(fired, 2) })
	s.At(after(3*time.Second), func() { fired = append(fired, 3) })
	s.RunUntil(after(2 * time.Second))
	if len(fired) != 2 {
		t.Errorf("fired = %v, want events at 1s and 2s (deadline inclusive)", fired)
	}
	if s.Now() != after(2*time.Second) {
		t.Errorf("Now() = %v, want t+2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	// Clock advances to the deadline even with no events in range.
	s2 := NewScheduler()
	s2.RunUntil(after(time.Minute))
	if s2.Now() != after(time.Minute) {
		t.Errorf("idle RunUntil: Now() = %v, want t+1m", s2.Now())
	}
}

func TestSchedulerEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.At(after(time.Second), func() {
		order = append(order, "first")
		s.After(simtime.FromDuration(time.Second), func() {
			order = append(order, "second")
		})
	})
	s.RunUntilIdle()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("order = %v", order)
	}
	if s.Now() != after(2*time.Second) {
		t.Errorf("Now() = %v, want t+2s", s.Now())
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(after(time.Duration(i)*time.Second), func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.RunUntilIdle()
	if count != 3 {
		t.Errorf("count = %d, want 3 (halted)", count)
	}
	// Run can resume after a halt.
	s.RunUntilIdle()
	if count != 10 {
		t.Errorf("count = %d, want 10 after resume", count)
	}
}

func TestSchedulerDeterministicOrderProperty(t *testing.T) {
	// Property: two schedulers fed identical schedules fire identically.
	f := func(delaysMs []uint16) bool {
		run := func() []int {
			s := NewScheduler()
			var order []int
			for i, d := range delaysMs {
				i := i
				s.At(after(time.Duration(d)*time.Millisecond), func() {
					order = append(order, i)
				})
			}
			s.RunUntilIdle()
			return order
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// oracleQueue is the scheduler's original container/heap event queue,
// kept here as the ordering oracle for the specialized 4-ary queue: both
// order by (at, seq), so any random workload must fire identically.
type oracleEvent struct {
	at    simtime.Instant
	seq   uint64
	index int
	fn    func()
}

type oracleQueue []*oracleEvent

func (q oracleQueue) Len() int { return len(q) }
func (q oracleQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q oracleQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *oracleQueue) Push(x any) {
	e := x.(*oracleEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *oracleQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

type oracleScheduler struct {
	now   simtime.Instant
	queue oracleQueue
	seq   uint64
}

func (s *oracleScheduler) at(at simtime.Instant, fn func()) *oracleEvent {
	e := &oracleEvent{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

func (s *oracleScheduler) cancel(e *oracleEvent) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
}

func (s *oracleScheduler) run() {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*oracleEvent)
		s.now = e.at
		e.fn()
	}
}

// TestSchedulerMatchesHeapOracle drives the specialized queue and the
// original container/heap implementation through identical randomized
// workloads — bursts of schedules (including ties), cancellations of
// random pending events, and follow-up events scheduled from inside
// callbacks — and requires bit-identical firing order. This is the
// determinism bar the golden-trace battery relies on.
func TestSchedulerMatchesHeapOracle(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*2654435761 + 1))
		type op struct {
			delayMs  int
			cancelOf int // index of an earlier op to cancel, -1 none
			chainMs  int // reschedule delay from inside the callback, 0 none
		}
		ops := make([]op, 200)
		for i := range ops {
			ops[i].delayMs = rng.Intn(50) // dense: plenty of (at) ties
			ops[i].cancelOf = -1
			if i > 0 && rng.Intn(4) == 0 {
				ops[i].cancelOf = rng.Intn(i)
			}
			if rng.Intn(5) == 0 {
				ops[i].chainMs = 1 + rng.Intn(20)
			}
		}

		// New queue.
		var gotOrder []int
		{
			s := NewScheduler()
			events := make([]Event, len(ops))
			for i, o := range ops {
				i, o := i, o
				events[i] = s.At(after(time.Duration(o.delayMs)*time.Millisecond), func() {
					gotOrder = append(gotOrder, i)
					if o.chainMs != 0 {
						s.After(simtime.FromDuration(time.Duration(o.chainMs)*time.Millisecond), func() {
							gotOrder = append(gotOrder, -i)
						})
					}
				})
				if o.cancelOf >= 0 {
					s.Cancel(events[o.cancelOf])
				}
			}
			s.RunUntilIdle()
		}

		// Oracle.
		var wantOrder []int
		{
			s := &oracleScheduler{}
			events := make([]*oracleEvent, len(ops))
			for i, o := range ops {
				i, o := i, o
				events[i] = s.at(after(time.Duration(o.delayMs)*time.Millisecond), func() {
					wantOrder = append(wantOrder, i)
					if o.chainMs != 0 {
						s.at(s.now+simtime.FromDuration(time.Duration(o.chainMs)*time.Millisecond), func() {
							wantOrder = append(wantOrder, -i)
						})
					}
				})
				if o.cancelOf >= 0 {
					s.cancel(events[o.cancelOf])
				}
			}
			s.run()
		}

		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("trial %d: fired %d events, oracle fired %d", trial, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("trial %d: firing order diverges from heap oracle at %d: got %d, want %d",
					trial, i, gotOrder[i], wantOrder[i])
			}
		}
	}
}

func TestEventAt(t *testing.T) {
	s := NewScheduler()
	e := s.At(after(5*time.Second), func() {})
	if e.At() != after(5*time.Second) {
		t.Errorf("At() = %v", e.At())
	}
	s.RunUntilIdle()
	if e.At() != simtime.Epoch {
		t.Errorf("fired handle At() = %v, want epoch", e.At())
	}
	if (Event{}).At() != simtime.Epoch {
		t.Error("zero Event At() should report the epoch")
	}
}

// TestSchedulerStepZeroAllocSteadyState is the allocation regression
// guard CI runs: once the slot and heap arrays have reached their
// high-water mark, scheduling and firing events must not allocate.
func TestSchedulerStepZeroAllocSteadyState(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm up past the high-water mark: a standing queue plus churn.
	for i := 0; i < 256; i++ {
		s.After(simtime.FromDuration(time.Duration(i+1)*time.Microsecond), fn)
	}
	for i := 0; i < 256; i++ {
		s.After(simtime.FromDuration(time.Millisecond), fn)
		s.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(simtime.FromDuration(time.Millisecond), fn)
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state After+Step allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSchedulerCancelZeroAllocSteadyState(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.After(simtime.FromDuration(time.Duration(i+1)*time.Microsecond), fn)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e := s.After(simtime.FromDuration(time.Millisecond), fn)
		s.Cancel(e)
	})
	if allocs != 0 {
		t.Errorf("steady-state At+Cancel allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkSchedulerThroughput is the headline scheduler metric tracked
// in BENCH_pr3.json: steady-state events scheduled and fired against a
// standing queue, reported as events/sec.
func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.After(simtime.FromDuration(time.Duration(i+1)*time.Microsecond), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(simtime.FromDuration(time.Millisecond), fn)
		s.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkSchedulerEventThroughput(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(simtime.FromDuration(time.Microsecond), func() {})
		s.Step()
	}
}

func BenchmarkSchedulerDeepQueue(b *testing.B) {
	// Sustained 1k-event queue: push one, pop one.
	s := NewScheduler()
	for i := 0; i < 1000; i++ {
		s.After(simtime.FromDuration(time.Duration(i)*time.Microsecond), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(simtime.FromDuration(time.Millisecond), func() {})
		s.Step()
	}
}

func BenchmarkSchedulerCancel(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 1000; i++ {
		s.After(simtime.FromDuration(time.Duration(i)*time.Microsecond), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.After(simtime.FromDuration(time.Millisecond), fn)
		s.Cancel(e)
	}
}
