// Package simnet simulates the UDP network connecting Triad nodes and
// the Time Authority. Links have configurable base delay, jitter and
// loss; middleboxes can observe ciphertext datagrams and add delay or
// drop them, which is exactly the attacker position of the paper's
// threat model (control of the OS / network path, no access to message
// contents).
package simnet

import (
	"fmt"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simtime"
)

// Addr identifies an endpoint. It doubles as the wire-layer sender ID.
type Addr uint32

// Packet is one datagram in flight. Payload is ciphertext: middleboxes
// may inspect its length and endpoints, never plaintext.
type Packet struct {
	From, To Addr
	Payload  []byte
	SentAt   simtime.Instant
}

// Handler consumes datagrams delivered to a registered endpoint. The
// Payload slice is only valid for the duration of the callback: the
// network recycles delivery buffers, so a handler that needs the bytes
// later must copy them.
type Handler func(pkt Packet)

// Verdict is a middlebox's decision about one packet.
type Verdict struct {
	// ExtraDelay is added on top of the link's natural delay.
	ExtraDelay time.Duration
	// Drop discards the packet entirely.
	Drop bool
	// Duplicate delivers a second copy of the packet after an
	// additional resample of the link delay (replay/duplication
	// attacks; the wire layer's anti-replay window must absorb it).
	// The copy carries its own payload buffer, so a handler mutating
	// or recycling the original's bytes cannot corrupt the replay.
	Duplicate bool
}

// Middlebox observes packets traversing the network and may delay or
// drop them. Boxes run in attach order; their extra delays accumulate.
type Middlebox interface {
	// Process inspects a packet at the moment it is sent. now is the
	// current reference time (the attacker runs outside the TCB and has
	// an accurate clock of its own). Boxes see every sent packet,
	// including ones the lossy link subsequently drops; the Payload
	// slice must not be retained past the call.
	Process(now simtime.Instant, pkt Packet) Verdict
}

// Link is the delay/loss model of one directed endpoint pair.
type Link struct {
	// Base is the minimum one-way delay.
	Base time.Duration
	// JitterSigma is the sigma of a lognormal jitter term added to Base;
	// its scale is JitterScale. Zero sigma disables jitter.
	JitterSigma float64
	// JitterScale is the magnitude of the jitter term: the added delay is
	// JitterScale * LogNormal(0, JitterSigma). Defaults to 20µs if zero
	// while JitterSigma is set.
	JitterScale time.Duration
	// LossProb is the probability a packet is dropped in transit.
	LossProb float64
}

// DefaultLink is the LAN-like link model used by the experiments: 100µs
// base one-way delay with a lognormal jitter tail. Over Triad's ≤1s
// calibration windows this jitter alone produces the paper's O(100ppm)
// calibration errors.
func DefaultLink() Link {
	return Link{
		Base:        100 * time.Microsecond,
		JitterSigma: 1.0,
		JitterScale: 20 * time.Microsecond,
	}
}

// Network is the simulated datagram fabric.
type Network struct {
	sched       *sim.Scheduler
	rng         *sim.RNG
	handlers    map[Addr]Handler
	defaultLink Link
	links       map[[2]Addr]Link
	policy      LinkPolicy
	boxes       []Middlebox

	sent       int
	delivered  int
	lostLink   int // dropped by a lossy link in transit
	droppedBox int // dropped by a middlebox verdict
	unrouted   int // delivered to an address with no handler

	// freePending recycles in-flight delivery records (and their payload
	// buffers) so steady-state delivery allocates nothing; the pool's
	// size is bounded by the maximum number of simultaneously in-flight
	// packets.
	freePending *pendingPacket
}

// pendingPacket is one scheduled delivery. Its fire closure is built
// once, when the record first enters the pool, and reused for every
// delivery the record carries afterwards; buf is the record's owned
// payload storage.
type pendingPacket struct {
	n    *Network
	pkt  Packet
	buf  []byte
	fire func()
	next *pendingPacket
}

// New creates a network on the scheduler with the given default link
// model applied to every endpoint pair that has no specific override.
func New(sched *sim.Scheduler, rng *sim.RNG, defaultLink Link) *Network {
	return &Network{
		sched:       sched,
		rng:         rng,
		handlers:    make(map[Addr]Handler),
		defaultLink: defaultLink,
		links:       make(map[[2]Addr]Link),
	}
}

// Register installs the delivery handler for an address. Registering an
// address twice is a configuration bug and panics.
func (n *Network) Register(a Addr, h Handler) {
	if _, dup := n.handlers[a]; dup {
		panic(fmt.Sprintf("simnet: address %d registered twice", a))
	}
	n.handlers[a] = h
}

// SetLink overrides the link model for the directed pair from -> to.
func (n *Network) SetLink(from, to Addr, l Link) {
	n.links[[2]Addr{from, to}] = l
}

// LinkPolicy computes a link model for a directed endpoint pair.
// Returning ok=false falls through to the network's default link.
type LinkPolicy func(from, to Addr) (Link, bool)

// SetLinkPolicy installs a computed link model, consulted for pairs
// without an explicit SetLink override. This is how region-structured
// topologies model O(n²) endpoint pairs without materializing a
// per-pair map: the policy derives the delay from the pair's region
// coordinates at send time.
func (n *Network) SetLinkPolicy(p LinkPolicy) { n.policy = p }

// AttachMiddlebox adds a middlebox. Boxes see every packet on the
// network in attach order; a box interested in one node's traffic
// filters by Packet endpoints.
func (n *Network) AttachMiddlebox(b Middlebox) {
	n.boxes = append(n.boxes, b)
}

// Send injects a datagram. Semantics are UDP-like: no delivery
// guarantee, no error to the sender on loss or unknown destination.
// The payload is copied into a network-owned buffer when a delivery is
// scheduled, so the caller may reuse its buffer as soon as Send returns.
func (n *Network) Send(from, to Addr, payload []byte) {
	n.sent++
	now := n.sched.Now()
	pkt := Packet{From: from, To: to, Payload: payload, SentAt: now}

	link, ok := n.links[[2]Addr{from, to}]
	if !ok && n.policy != nil {
		link, ok = n.policy(from, to)
	}
	if !ok {
		link = n.defaultLink
	}
	if link.LossProb > 0 && n.rng.Float64() < link.LossProb {
		// The link loses the packet in transit, but an attacker
		// middlebox sits on the path and still observes it — hiding
		// lossy-link traffic from the attacker would weaken the threat
		// model. The verdicts are moot: the packet is gone either way,
		// and the loss is accounted to the link, not the box.
		for _, b := range n.boxes {
			b.Process(now, pkt)
		}
		n.lostLink++
		return
	}
	delay := n.sampleDelay(link)
	duplicate := false
	for _, b := range n.boxes {
		v := b.Process(now, pkt)
		if v.Drop {
			n.droppedBox++
			return
		}
		if v.ExtraDelay > 0 {
			delay += v.ExtraDelay
		}
		duplicate = duplicate || v.Duplicate
	}
	n.deliver(pkt, delay)
	if duplicate {
		// deliver copies the payload per scheduled delivery, so the
		// duplicate owns its bytes: a handler that mutates or recycles
		// the original's buffer cannot corrupt the replayed copy.
		n.deliver(pkt, delay+n.sampleDelay(link))
	}
}

// sampleDelay draws one traversal delay from the link model.
func (n *Network) sampleDelay(link Link) time.Duration {
	delay := link.Base
	if link.JitterSigma > 0 {
		scale := link.JitterScale
		if scale == 0 {
			scale = 20 * time.Microsecond
		}
		delay += time.Duration(float64(scale) * n.rng.LogNormal(0, link.JitterSigma))
	}
	return delay
}

// deliver schedules one delivery through a pooled pending-packet
// record: the payload is copied into the record's own buffer and the
// record's pre-built fire closure is handed to the scheduler, so the
// steady-state path allocates nothing.
//
//triad:hotpath
func (n *Network) deliver(pkt Packet, delay time.Duration) {
	pp := n.freePending
	if pp == nil {
		pp = &pendingPacket{n: n} //triad:nolint:hotpath pool growth happens only until the in-flight high-water mark; steady state reuses
		pp.fire = pp.deliverNow
	} else {
		n.freePending = pp.next
		pp.next = nil
	}
	pp.buf = append(pp.buf[:0], pkt.Payload...)
	pp.pkt = pkt
	pp.pkt.Payload = pp.buf
	n.sched.After(simtime.FromDuration(delay), pp.fire)
}

// deliverNow hands the packet to its destination handler and returns
// the record to the pool. The record is recycled only after the handler
// returns: a handler that sends (scheduling new deliveries) re-enters
// deliver while this record's payload is still live.
//
//triad:hotpath
func (pp *pendingPacket) deliverNow() {
	n := pp.n
	pkt := pp.pkt
	if h, ok := n.handlers[pkt.To]; ok {
		n.delivered++
		h(pkt)
	} else {
		n.unrouted++
	}
	pp.pkt = Packet{}
	pp.next = n.freePending
	n.freePending = pp
}

// Stats reports cumulative sent/delivered/dropped packet counts.
// dropped aggregates every way a packet can die; DropStats separates
// them.
func (n *Network) Stats() (sent, delivered, dropped int) {
	return n.sent, n.delivered, n.lostLink + n.droppedBox + n.unrouted
}

// DropStats breaks the drop count down by cause: lostLink counts lossy
// links losing packets in transit, droppedBox counts middlebox Drop
// verdicts, and unrouted counts deliveries to unregistered addresses.
func (n *Network) DropStats() (lostLink, droppedBox, unrouted int) {
	return n.lostLink, n.droppedBox, n.unrouted
}
