// Package simnet simulates the UDP network connecting Triad nodes and
// the Time Authority. Links have configurable base delay, jitter and
// loss; middleboxes can observe ciphertext datagrams and add delay or
// drop them, which is exactly the attacker position of the paper's
// threat model (control of the OS / network path, no access to message
// contents).
package simnet

import (
	"fmt"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simtime"
)

// Addr identifies an endpoint. It doubles as the wire-layer sender ID.
type Addr uint32

// Packet is one datagram in flight. Payload is ciphertext: middleboxes
// may inspect its length and endpoints, never plaintext.
type Packet struct {
	From, To Addr
	Payload  []byte
	SentAt   simtime.Instant
}

// Handler consumes datagrams delivered to a registered endpoint.
type Handler func(pkt Packet)

// Verdict is a middlebox's decision about one packet.
type Verdict struct {
	// ExtraDelay is added on top of the link's natural delay.
	ExtraDelay time.Duration
	// Drop discards the packet entirely.
	Drop bool
	// Duplicate delivers a second copy of the packet after an
	// additional resample of the link delay (replay/duplication
	// attacks; the wire layer's anti-replay window must absorb it).
	Duplicate bool
}

// Middlebox observes packets traversing the network and may delay or
// drop them. Boxes run in attach order; their extra delays accumulate.
type Middlebox interface {
	// Process inspects a packet at the moment it is sent. now is the
	// current reference time (the attacker runs outside the TCB and has
	// an accurate clock of its own).
	Process(now simtime.Instant, pkt Packet) Verdict
}

// Link is the delay/loss model of one directed endpoint pair.
type Link struct {
	// Base is the minimum one-way delay.
	Base time.Duration
	// JitterSigma is the sigma of a lognormal jitter term added to Base;
	// its scale is JitterScale. Zero sigma disables jitter.
	JitterSigma float64
	// JitterScale is the magnitude of the jitter term: the added delay is
	// JitterScale * LogNormal(0, JitterSigma). Defaults to 20µs if zero
	// while JitterSigma is set.
	JitterScale time.Duration
	// LossProb is the probability a packet is dropped in transit.
	LossProb float64
}

// DefaultLink is the LAN-like link model used by the experiments: 100µs
// base one-way delay with a lognormal jitter tail. Over Triad's ≤1s
// calibration windows this jitter alone produces the paper's O(100ppm)
// calibration errors.
func DefaultLink() Link {
	return Link{
		Base:        100 * time.Microsecond,
		JitterSigma: 1.0,
		JitterScale: 20 * time.Microsecond,
	}
}

// Network is the simulated datagram fabric.
type Network struct {
	sched       *sim.Scheduler
	rng         *sim.RNG
	handlers    map[Addr]Handler
	defaultLink Link
	links       map[[2]Addr]Link
	boxes       []Middlebox

	sent      int
	delivered int
	dropped   int
}

// New creates a network on the scheduler with the given default link
// model applied to every endpoint pair that has no specific override.
func New(sched *sim.Scheduler, rng *sim.RNG, defaultLink Link) *Network {
	return &Network{
		sched:       sched,
		rng:         rng,
		handlers:    make(map[Addr]Handler),
		defaultLink: defaultLink,
		links:       make(map[[2]Addr]Link),
	}
}

// Register installs the delivery handler for an address. Registering an
// address twice is a configuration bug and panics.
func (n *Network) Register(a Addr, h Handler) {
	if _, dup := n.handlers[a]; dup {
		panic(fmt.Sprintf("simnet: address %d registered twice", a))
	}
	n.handlers[a] = h
}

// SetLink overrides the link model for the directed pair from -> to.
func (n *Network) SetLink(from, to Addr, l Link) {
	n.links[[2]Addr{from, to}] = l
}

// AttachMiddlebox adds a middlebox. Boxes see every packet on the
// network in attach order; a box interested in one node's traffic
// filters by Packet endpoints.
func (n *Network) AttachMiddlebox(b Middlebox) {
	n.boxes = append(n.boxes, b)
}

// Send injects a datagram. Semantics are UDP-like: no delivery
// guarantee, no error to the sender on loss or unknown destination.
// The payload is not copied; callers must not reuse the buffer.
func (n *Network) Send(from, to Addr, payload []byte) {
	n.sent++
	now := n.sched.Now()
	pkt := Packet{From: from, To: to, Payload: payload, SentAt: now}

	link, ok := n.links[[2]Addr{from, to}]
	if !ok {
		link = n.defaultLink
	}
	if link.LossProb > 0 && n.rng.Float64() < link.LossProb {
		n.dropped++
		return
	}
	delay := n.sampleDelay(link)
	duplicate := false
	for _, b := range n.boxes {
		v := b.Process(now, pkt)
		if v.Drop {
			n.dropped++
			return
		}
		if v.ExtraDelay > 0 {
			delay += v.ExtraDelay
		}
		duplicate = duplicate || v.Duplicate
	}
	n.deliver(pkt, delay)
	if duplicate {
		n.deliver(pkt, delay+n.sampleDelay(link))
	}
}

// sampleDelay draws one traversal delay from the link model.
func (n *Network) sampleDelay(link Link) time.Duration {
	delay := link.Base
	if link.JitterSigma > 0 {
		scale := link.JitterScale
		if scale == 0 {
			scale = 20 * time.Microsecond
		}
		delay += time.Duration(float64(scale) * n.rng.LogNormal(0, link.JitterSigma))
	}
	return delay
}

func (n *Network) deliver(pkt Packet, delay time.Duration) {
	n.sched.After(simtime.FromDuration(delay), func() {
		h, ok := n.handlers[pkt.To]
		if !ok {
			n.dropped++
			return
		}
		n.delivered++
		h(pkt)
	})
}

// Stats reports cumulative sent/delivered/dropped packet counts.
func (n *Network) Stats() (sent, delivered, dropped int) {
	return n.sent, n.delivered, n.dropped
}
