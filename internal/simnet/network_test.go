package simnet

import (
	"testing"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simtime"
)

func fixedLink(d time.Duration) Link { return Link{Base: d} }

func newNet(t *testing.T, link Link) (*sim.Scheduler, *Network) {
	t.Helper()
	sched := sim.NewScheduler()
	return sched, New(sched, sim.NewRNG(1), link)
}

func TestDeliveryAfterLinkDelay(t *testing.T) {
	sched, net := newNet(t, fixedLink(time.Millisecond))
	var gotAt simtime.Instant
	var got Packet
	net.Register(2, func(p Packet) {
		got = p
		gotAt = sched.Now()
	})
	payload := []byte("ciphertext")
	net.Send(1, 2, payload)
	sched.RunUntilIdle()
	if string(got.Payload) != "ciphertext" || got.From != 1 || got.To != 2 {
		t.Errorf("delivered packet = %+v", got)
	}
	if gotAt != simtime.FromDuration(time.Millisecond) {
		t.Errorf("delivered at %v, want t+1ms", gotAt)
	}
	if got.SentAt != simtime.Epoch {
		t.Errorf("SentAt = %v, want epoch", got.SentAt)
	}
}

func TestUnknownDestinationSilentlyDropped(t *testing.T) {
	sched, net := newNet(t, fixedLink(time.Millisecond))
	net.Send(1, 99, []byte("x"))
	sched.RunUntilIdle()
	sent, delivered, dropped := net.Stats()
	if sent != 1 || delivered != 0 || dropped != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/0/1", sent, delivered, dropped)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	_, net := newNet(t, fixedLink(0))
	net.Register(1, func(Packet) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	net.Register(1, func(Packet) {})
}

func TestPerLinkOverride(t *testing.T) {
	sched, net := newNet(t, fixedLink(time.Millisecond))
	net.SetLink(1, 2, fixedLink(50*time.Millisecond))
	var at12, at21 simtime.Instant
	net.Register(2, func(Packet) { at12 = sched.Now() })
	net.Register(1, func(Packet) { at21 = sched.Now() })
	net.Send(1, 2, []byte("a"))
	net.Send(2, 1, []byte("b"))
	sched.RunUntilIdle()
	if at12 != simtime.FromDuration(50*time.Millisecond) {
		t.Errorf("overridden link delivered at %v, want t+50ms", at12)
	}
	if at21 != simtime.FromDuration(time.Millisecond) {
		t.Errorf("default link delivered at %v, want t+1ms", at21)
	}
}

func TestLoss(t *testing.T) {
	sched, net := newNet(t, Link{Base: time.Millisecond, LossProb: 0.5})
	received := 0
	net.Register(2, func(Packet) { received++ })
	const n = 2000
	for i := 0; i < n; i++ {
		net.Send(1, 2, []byte("x"))
	}
	sched.RunUntilIdle()
	if received < n/2-100 || received > n/2+100 {
		t.Errorf("received %d of %d with 50%% loss", received, n)
	}
	sent, delivered, dropped := net.Stats()
	if sent != n || delivered != received || delivered+dropped != n {
		t.Errorf("stats inconsistent: %d/%d/%d", sent, delivered, dropped)
	}
}

func TestJitterAddsPositiveDelay(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(7), DefaultLink())
	worst := time.Duration(0)
	count := 0
	net.Register(2, func(p Packet) {
		d := sched.Now().Sub(p.SentAt)
		if d < DefaultLink().Base {
			t.Fatalf("delivery faster than base delay: %v", d)
		}
		if d > worst {
			worst = d
		}
		count++
	})
	for i := 0; i < 1000; i++ {
		net.Send(1, 2, []byte("x"))
	}
	sched.RunUntilIdle()
	if count != 1000 {
		t.Fatalf("delivered %d, want 1000", count)
	}
	if worst == DefaultLink().Base {
		t.Error("jitter appears disabled: all deliveries at exactly base delay")
	}
}

type delayBox struct {
	match func(Packet) bool
	extra time.Duration
	seen  int
}

func (b *delayBox) Process(_ simtime.Instant, p Packet) Verdict {
	b.seen++
	if b.match(p) {
		return Verdict{ExtraDelay: b.extra}
	}
	return Verdict{}
}

type dropBox struct{ match func(Packet) bool }

func (b *dropBox) Process(_ simtime.Instant, p Packet) Verdict {
	return Verdict{Drop: b.match(p)}
}

func TestMiddleboxDelay(t *testing.T) {
	sched, net := newNet(t, fixedLink(time.Millisecond))
	box := &delayBox{
		match: func(p Packet) bool { return p.From == 3 },
		extra: 100 * time.Millisecond,
	}
	net.AttachMiddlebox(box)
	var atAttacked, atClean simtime.Instant
	net.Register(2, func(p Packet) {
		if p.From == 3 {
			atAttacked = sched.Now()
		} else {
			atClean = sched.Now()
		}
	})
	net.Send(3, 2, []byte("delayed"))
	net.Send(1, 2, []byte("clean"))
	sched.RunUntilIdle()
	if atAttacked != simtime.FromDuration(101*time.Millisecond) {
		t.Errorf("attacked packet at %v, want t+101ms", atAttacked)
	}
	if atClean != simtime.FromDuration(time.Millisecond) {
		t.Errorf("clean packet at %v, want t+1ms", atClean)
	}
	if box.seen != 2 {
		t.Errorf("middlebox saw %d packets, want 2", box.seen)
	}
}

func TestMiddleboxDrop(t *testing.T) {
	sched, net := newNet(t, fixedLink(time.Millisecond))
	net.AttachMiddlebox(&dropBox{match: func(p Packet) bool { return p.To == 2 }})
	delivered := 0
	net.Register(2, func(Packet) { delivered++ })
	net.Register(3, func(Packet) { delivered++ })
	net.Send(1, 2, []byte("x"))
	net.Send(1, 3, []byte("y"))
	sched.RunUntilIdle()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (packet to addr 2 dropped)", delivered)
	}
}

func TestMiddleboxDelaysAccumulate(t *testing.T) {
	sched, net := newNet(t, fixedLink(time.Millisecond))
	all := func(Packet) bool { return true }
	net.AttachMiddlebox(&delayBox{match: all, extra: 10 * time.Millisecond})
	net.AttachMiddlebox(&delayBox{match: all, extra: 5 * time.Millisecond})
	var at simtime.Instant
	net.Register(2, func(Packet) { at = sched.Now() })
	net.Send(1, 2, []byte("x"))
	sched.RunUntilIdle()
	if at != simtime.FromDuration(16*time.Millisecond) {
		t.Errorf("delivered at %v, want t+16ms", at)
	}
}

// TestLossSeparatedFromMiddleboxDrops pins the Send accounting fix:
// middleboxes observe every sent packet — including ones the lossy link
// swallows — and Stats no longer conflates link loss with middlebox
// drops.
func TestLossSeparatedFromMiddleboxDrops(t *testing.T) {
	sched, net := newNet(t, Link{Base: time.Millisecond, LossProb: 0.5})
	box := &delayBox{match: func(Packet) bool { return false }}
	net.AttachMiddlebox(box)
	net.Register(2, func(Packet) {})
	const n = 2000
	for i := 0; i < n; i++ {
		net.Send(1, 2, []byte("x"))
	}
	sched.RunUntilIdle()
	if box.seen != n {
		t.Errorf("middlebox saw %d of %d packets; lossy-link traffic must be observable", box.seen, n)
	}
	lostLink, droppedBox, unrouted := net.DropStats()
	if droppedBox != 0 || unrouted != 0 {
		t.Errorf("droppedBox = %d, unrouted = %d, want 0/0", droppedBox, unrouted)
	}
	if lostLink < n/2-100 || lostLink > n/2+100 {
		t.Errorf("lostLink = %d of %d with 50%% loss", lostLink, n)
	}
	sent, delivered, dropped := net.Stats()
	if sent != n || delivered+dropped != n || dropped != lostLink {
		t.Errorf("stats inconsistent: %d/%d/%d, lostLink %d", sent, delivered, dropped, lostLink)
	}
}

func TestDropStatsSeparatesBoxDrops(t *testing.T) {
	sched, net := newNet(t, fixedLink(time.Millisecond))
	net.AttachMiddlebox(&dropBox{match: func(p Packet) bool { return p.To == 2 }})
	net.Register(2, func(Packet) {})
	net.Register(3, func(Packet) {})
	net.Send(1, 2, []byte("x"))
	net.Send(1, 3, []byte("y"))
	net.Send(1, 99, []byte("z"))
	sched.RunUntilIdle()
	lostLink, droppedBox, unrouted := net.DropStats()
	if lostLink != 0 || droppedBox != 1 || unrouted != 1 {
		t.Errorf("DropStats = %d/%d/%d, want 0/1/1", lostLink, droppedBox, unrouted)
	}
	if _, _, dropped := net.Stats(); dropped != 2 {
		t.Errorf("aggregate dropped = %d, want 2", dropped)
	}
}

// TestSenderMayReuseBufferAfterSend pins the pooled-delivery contract:
// the network copies the payload when scheduling a delivery, so a sender
// overwriting its buffer right after Send cannot corrupt the datagram.
func TestSenderMayReuseBufferAfterSend(t *testing.T) {
	sched, net := newNet(t, fixedLink(time.Millisecond))
	var got []byte
	net.Register(2, func(p Packet) { got = append([]byte(nil), p.Payload...) })
	buf := []byte("original")
	net.Send(1, 2, buf)
	copy(buf, "clobber!")
	sched.RunUntilIdle()
	if string(got) != "original" {
		t.Errorf("delivered %q; sender reuse corrupted an in-flight packet", got)
	}
}

// TestDuplicatePayloadIsolated pins the duplicate-copy fix: a handler
// that mutates the payload it received must not corrupt the replayed
// copy, which arrives later from the same Send.
func TestDuplicatePayloadIsolated(t *testing.T) {
	sched, net := newNet(t, fixedLink(time.Millisecond))
	net.AttachMiddlebox(dupBox{})
	var got []string
	net.Register(2, func(p Packet) {
		got = append(got, string(p.Payload))
		for i := range p.Payload {
			p.Payload[i] = 'X' // hostile handler scribbles on its buffer
		}
	})
	net.Send(1, 2, []byte("payload"))
	sched.RunUntilIdle()
	if len(got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(got))
	}
	if got[0] != "payload" || got[1] != "payload" {
		t.Errorf("deliveries = %q; duplicate shared the original's buffer", got)
	}
}

// TestDeliverZeroAllocSteadyState is the allocation regression guard CI
// runs: once the pending-packet pool is warm, Send+Step must not
// allocate.
func TestDeliverZeroAllocSteadyState(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(1), DefaultLink())
	net.Register(2, func(Packet) {})
	payload := make([]byte, 64)
	for i := 0; i < 256; i++ {
		net.Send(1, 2, payload)
		sched.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		net.Send(1, 2, payload)
		sched.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state Send+Step allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkNetworkDelivery is the headline network metric tracked in
// BENCH_pr3.json: one jittered send and its delivery per iteration.
func BenchmarkNetworkDelivery(b *testing.B) {
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(1), DefaultLink())
	net.Register(2, func(Packet) {})
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(1, 2, payload)
		sched.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
}

func BenchmarkSendDeliver(b *testing.B) {
	sched := sim.NewScheduler()
	net := New(sched, sim.NewRNG(1), DefaultLink())
	net.Register(2, func(Packet) {})
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Send(1, 2, payload)
		sched.Step()
	}
}

type dupBox struct{}

func (dupBox) Process(_ simtime.Instant, _ Packet) Verdict {
	return Verdict{Duplicate: true}
}

func TestMiddleboxDuplicate(t *testing.T) {
	sched, net := newNet(t, fixedLink(time.Millisecond))
	net.AttachMiddlebox(dupBox{})
	got := 0
	net.Register(2, func(Packet) { got++ })
	net.Send(1, 2, []byte("x"))
	sched.RunUntilIdle()
	if got != 2 {
		t.Errorf("deliveries = %d, want 2 (duplicated)", got)
	}
	_, delivered, _ := net.Stats()
	if delivered != 2 {
		t.Errorf("stats delivered = %d", delivered)
	}
}

func TestLinkPolicyPrecedence(t *testing.T) {
	// Precedence: explicit SetLink pair beats the policy, the policy
	// beats the default link, and a policy miss (ok=false) falls back
	// to the default.
	sched, net := newNet(t, fixedLink(time.Millisecond))
	net.SetLink(1, 2, fixedLink(5*time.Millisecond))
	net.SetLinkPolicy(func(from, to Addr) (Link, bool) {
		if from == 3 {
			return fixedLink(20 * time.Millisecond), true
		}
		return Link{}, false
	})
	deliveredAt := map[Addr]simtime.Instant{}
	for _, a := range []Addr{2, 4} {
		a := a
		net.Register(a, func(p Packet) { deliveredAt[p.From] = sched.Now() })
	}
	net.Send(1, 2, []byte("pair override"))
	net.Send(3, 4, []byte("policy"))
	net.Send(5, 4, []byte("policy miss, default"))
	sched.RunUntilIdle()
	if got := deliveredAt[1]; got != simtime.FromDuration(5*time.Millisecond) {
		t.Errorf("pair-override delivery at %v, want 5ms", got)
	}
	if got := deliveredAt[3]; got != simtime.FromDuration(20*time.Millisecond) {
		t.Errorf("policy delivery at %v, want 20ms", got)
	}
	if got := deliveredAt[5]; got != simtime.FromDuration(time.Millisecond) {
		t.Errorf("policy-miss delivery at %v, want default 1ms", got)
	}
}
