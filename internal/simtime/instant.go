// Package simtime models the reference timeline and the clock hardware of
// the reproduction: the Time Authority's reference time, per-core
// TimeStamp Counters (TSC) with hypervisor-controlled manipulation, and
// CPU core frequency for INC-instruction counting.
//
// Reference time is the ground truth every drift measurement in the paper
// is taken against. Nodes never read it directly; only the experiment
// harness and the Time Authority do.
package simtime

import (
	"fmt"
	"time"
)

// Instant is a point on the reference timeline, in nanoseconds since the
// experiment epoch. The zero Instant is the epoch itself.
type Instant int64

// Epoch is the origin of the reference timeline.
const Epoch Instant = 0

// FromSeconds converts seconds of reference time since the epoch to an
// Instant, rounding to the nearest nanosecond.
func FromSeconds(s float64) Instant {
	return Instant(s * float64(time.Second))
}

// FromDuration converts an offset from the epoch to an Instant.
func FromDuration(d time.Duration) Instant { return Instant(d) }

// Add returns the instant d after i.
func (i Instant) Add(d time.Duration) Instant { return i + Instant(d) }

// Sub returns the duration from j to i (i - j).
func (i Instant) Sub(j Instant) time.Duration { return time.Duration(i - j) }

// Seconds expresses the instant as seconds since the epoch.
func (i Instant) Seconds() float64 { return float64(i) / float64(time.Second) }

// Before reports whether i precedes j.
func (i Instant) Before(j Instant) bool { return i < j }

// After reports whether i follows j.
func (i Instant) After(j Instant) bool { return i > j }

// String renders the instant as a duration offset from the epoch.
func (i Instant) String() string {
	return fmt.Sprintf("t+%s", time.Duration(i))
}
