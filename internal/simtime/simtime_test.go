package simtime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestInstantArithmetic(t *testing.T) {
	i := Epoch.Add(3 * time.Second)
	if got := i.Seconds(); got != 3 {
		t.Errorf("Seconds() = %v, want 3", got)
	}
	j := i.Add(500 * time.Millisecond)
	if got := j.Sub(i); got != 500*time.Millisecond {
		t.Errorf("Sub = %v, want 500ms", got)
	}
	if !i.Before(j) || !j.After(i) {
		t.Error("ordering broken")
	}
	if got := FromSeconds(1.5); got != Epoch.Add(1500*time.Millisecond) {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := FromDuration(time.Second); got != Epoch.Add(time.Second) {
		t.Errorf("FromDuration = %v", got)
	}
	if s := Epoch.Add(time.Minute).String(); s != "t+1m0s" {
		t.Errorf("String() = %q", s)
	}
}

func TestTSCNominalRate(t *testing.T) {
	c := NewTSC(NominalTSCHz, 0)
	at1s := c.ReadAt(FromSeconds(1))
	if math.Abs(float64(at1s)-NominalTSCHz) > 1 {
		t.Errorf("ReadAt(1s) = %d, want ~%v", at1s, NominalTSCHz)
	}
	if c.GuestHz() != NominalTSCHz {
		t.Errorf("GuestHz = %v", c.GuestHz())
	}
	if c.HostHz() != NominalTSCHz {
		t.Errorf("HostHz = %v", c.HostHz())
	}
}

func TestTSCStartOffset(t *testing.T) {
	c := NewTSC(1e9, 1000)
	if got := c.ReadAt(Epoch); got != 1000 {
		t.Errorf("ReadAt(epoch) = %d, want 1000", got)
	}
	if got := c.ReadAt(FromSeconds(1)); got != 1000+1e9 {
		t.Errorf("ReadAt(1s) = %d", got)
	}
}

func TestTSCScaleContinuity(t *testing.T) {
	c := NewTSC(1e9, 0)
	tSwitch := FromSeconds(2)
	before := c.ReadAt(tSwitch)
	c.SetScale(1.5, tSwitch)
	after := c.ReadAt(tSwitch)
	if before != after {
		t.Errorf("scale change not continuous: before %d after %d", before, after)
	}
	// One second later the guest sees 1.5e9 extra ticks.
	got := c.ReadAt(tSwitch.Add(time.Second))
	want := before + 15e8
	if math.Abs(float64(got)-float64(want)) > 1 {
		t.Errorf("post-scale read = %d, want ~%d", got, want)
	}
	if c.Scale() != 1.5 || c.GuestHz() != 1.5e9 {
		t.Errorf("Scale/GuestHz = %v/%v", c.Scale(), c.GuestHz())
	}
}

func TestTSCJumpForwardAndBack(t *testing.T) {
	c := NewTSC(1e9, 0)
	at := FromSeconds(1)
	c.Jump(5000, at)
	if got := c.ReadAt(at); got != 1e9+5000 {
		t.Errorf("after forward jump ReadAt = %d", got)
	}
	c.Jump(-2000, at)
	if got := c.ReadAt(at); got != 1e9+3000 {
		t.Errorf("after backward jump ReadAt = %d", got)
	}
}

func TestTSCJumpClampsAtZero(t *testing.T) {
	c := NewTSC(1e9, 0)
	c.Jump(-1e18, FromSeconds(1))
	if got := c.ReadAt(FromSeconds(1)); got != 0 {
		t.Errorf("backward jump should clamp at 0, got %d", got)
	}
}

func TestTSCReadBeforeManipulationIsClamped(t *testing.T) {
	c := NewTSC(1e9, 0)
	c.SetScale(2, FromSeconds(5))
	atSwitch := c.ReadAt(FromSeconds(5))
	if got := c.ReadAt(FromSeconds(1)); got != atSwitch {
		t.Errorf("read before last manipulation = %d, want clamp to %d", got, atSwitch)
	}
}

func TestTSCTimeOfTicksAfter(t *testing.T) {
	c := NewTSC(2e9, 0)
	from := FromSeconds(1)
	at := c.TimeOfTicksAfter(from, 1e9) // half a second at 2GHz
	want := from.Add(500 * time.Millisecond)
	if d := at.Sub(want); d < -time.Nanosecond || d > time.Nanosecond {
		t.Errorf("TimeOfTicksAfter = %v, want %v", at, want)
	}
	// After scaling 2x the same tick budget takes half the reference time.
	c.SetScale(2, from)
	at = c.TimeOfTicksAfter(from, 1e9)
	want = from.Add(250 * time.Millisecond)
	if d := at.Sub(want); d < -time.Nanosecond || d > time.Nanosecond {
		t.Errorf("scaled TimeOfTicksAfter = %v, want %v", at, want)
	}
}

func TestTSCMonotonicProperty(t *testing.T) {
	// Property: for any manipulation-free pair of reads, later reads see
	// larger-or-equal values; SetScale/Jump(+) preserve monotonicity.
	f := func(sec1, sec2 uint16, scaleMilli uint16, jump uint32) bool {
		c := NewTSC(1e9, 0)
		t1 := FromSeconds(float64(sec1) / 100)
		t2 := FromSeconds(float64(sec2) / 100)
		if t2 < t1 {
			t1, t2 = t2, t1
		}
		v1 := c.ReadAt(t1)
		scale := 0.5 + float64(scaleMilli)/1000.0
		c.SetScale(scale, t1)
		c.Jump(int64(jump), t1)
		v2 := c.ReadAt(t2)
		return v2 >= v1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTSCInvalidArgumentsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTSC with zero rate should panic")
		}
	}()
	NewTSC(0, 0)
}

func TestTSCSetScaleZeroPanics(t *testing.T) {
	c := NewTSC(1e9, 0)
	defer func() {
		if recover() == nil {
			t.Error("SetScale(0) should panic")
		}
	}()
	c.SetScale(0, Epoch)
}

func TestCoreINCPerTicks(t *testing.T) {
	core := PaperCore()
	got := core.INCPerTicks(15e6, NominalTSCHz)
	// The PaperCyclesPerINC constant is defined to land the ideal count on
	// the paper's measured mean of 632182 INC per 15e6 TSC ticks.
	if math.Abs(got-PaperINCPer15MTicks) > 1e-3 {
		t.Errorf("INCPerTicks = %v, want %v", got, PaperINCPer15MTicks)
	}
}

func TestCoreINCPerTicksScalesWithFrequency(t *testing.T) {
	slow := Core{FreqHz: PaperCoreHz / 2, CyclesPerINC: PaperCyclesPerINC}
	fast := PaperCore()
	if got, want := slow.INCPerTicks(15e6, NominalTSCHz), fast.INCPerTicks(15e6, NominalTSCHz)/2; math.Abs(got-want) > 1e-6 {
		t.Errorf("halving core frequency: got %v, want %v", got, want)
	}
}

func TestCoreINCPerTicksDefaultsCycleCost(t *testing.T) {
	core := Core{FreqHz: 1e9} // CyclesPerINC unset -> treated as 1
	if got := core.INCPerTicks(1e9, 1e9); got != 1e9 {
		t.Errorf("INCPerTicks with default cycle cost = %v, want 1e9", got)
	}
}

func TestTSCTimeOfReaching(t *testing.T) {
	c := NewTSC(1e9, 0)
	from := FromSeconds(1)
	target := c.ReadAt(from) + 5e8 // half a second away
	at := c.TimeOfReaching(target, from)
	if d := at.Sub(from.Add(500 * time.Millisecond)); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("TimeOfReaching = %v", at)
	}
	// Already-passed targets resolve to now.
	if got := c.TimeOfReaching(0, from); got != from {
		t.Errorf("passed target: %v, want %v", got, from)
	}
	// Scaling changes the pace.
	c.SetScale(2, from)
	target = c.ReadAt(from) + 1e9
	at = c.TimeOfReaching(target, from)
	if d := at.Sub(from.Add(500 * time.Millisecond)); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("scaled TimeOfReaching = %v", at)
	}
}

func TestTSCObservers(t *testing.T) {
	c := NewTSC(1e9, 0)
	var notified []Instant
	c.Observe(func(at Instant) { notified = append(notified, at) })
	c.Observe(func(at Instant) { notified = append(notified, at) })
	c.SetScale(1.5, FromSeconds(1))
	c.Jump(100, FromSeconds(2))
	if len(notified) != 4 {
		t.Fatalf("notifications = %d, want 4 (2 observers x 2 manipulations)", len(notified))
	}
	if notified[0] != FromSeconds(1) || notified[2] != FromSeconds(2) {
		t.Errorf("notification instants = %v", notified)
	}
}
