package simtime

import (
	"fmt"
	"time"
)

// NominalTSCHz is the TSC rate of the paper's evaluation machine as
// measured by the OS at boot time: 2899.999 MHz.
const NominalTSCHz = 2899.999e6

// TSC models one core's TimeStamp Counter as seen from inside a guest
// (the enclave). The host TSC advances at a fixed physical rate; a
// malicious hypervisor may additionally scale the guest-visible rate or
// jump the guest-visible value, which is exactly the attacker capability
// the paper's Section III-A grants ("a hypervisor virtualizing the TSC may
// change its value's offset and scaling factor").
//
// The guest view is piecewise linear: between manipulations,
//
//	guest(t) = base + scale * hostHz * (t - baseAt).
//
// TSC is not safe for concurrent use; in the simulation all accesses are
// serialized by the event loop.
type TSC struct {
	hostHz float64 // physical tick rate, ticks per reference second
	scale  float64 // hypervisor scaling factor applied to the guest view
	base   float64 // guest ticks at baseAt
	baseAt Instant

	// observers are notified after every manipulation (scale change or
	// jump): in-enclave code that waits on a TSC target — monitoring
	// windows, tick deadlines — reaches it at a different real time
	// once the guest view bends.
	observers []func(at Instant)
}

// NewTSC creates a TSC whose physical rate is hostHz ticks per reference
// second, starting from startTicks at the epoch, with no manipulation.
func NewTSC(hostHz float64, startTicks uint64) *TSC {
	if hostHz <= 0 {
		panic(fmt.Sprintf("simtime: non-positive TSC rate %v", hostHz))
	}
	return &TSC{
		hostHz: hostHz,
		scale:  1,
		base:   float64(startTicks),
		baseAt: Epoch,
	}
}

// HostHz reports the physical tick rate in ticks per reference second.
func (c *TSC) HostHz() float64 { return c.hostHz }

// Scale reports the hypervisor scaling factor currently applied.
func (c *TSC) Scale() float64 { return c.scale }

// ReadAt returns the guest-visible TSC value at reference time t.
// Reading at a time before the last manipulation returns the value as of
// that manipulation; the guest view never runs backwards.
func (c *TSC) ReadAt(t Instant) uint64 {
	if t < c.baseAt {
		t = c.baseAt
	}
	dt := t.Sub(c.baseAt).Seconds()
	v := c.base + c.scale*c.hostHz*dt
	if v < 0 {
		v = 0
	}
	return uint64(v)
}

// rebase folds the guest view up to time t into the base so a subsequent
// manipulation takes effect from t while keeping the view continuous.
func (c *TSC) rebase(t Instant) {
	c.base = float64(c.ReadAt(t))
	c.baseAt = t
}

// Observe registers a manipulation observer. Observers run after the
// manipulation is applied.
func (c *TSC) Observe(fn func(at Instant)) {
	c.observers = append(c.observers, fn)
}

func (c *TSC) notify(t Instant) {
	for _, fn := range c.observers {
		fn(t)
	}
}

// SetScale applies a hypervisor scaling factor from reference time t
// onward. The guest view stays continuous at t (hypervisors adjust the
// offset on a scale change so the guest does not observe a jump).
func (c *TSC) SetScale(scale float64, t Instant) {
	if scale <= 0 {
		panic(fmt.Sprintf("simtime: non-positive TSC scale %v", scale))
	}
	c.rebase(t)
	c.scale = scale
	c.notify(t)
}

// Jump offsets the guest-visible TSC by delta ticks at reference time t.
// Negative deltas move the guest TSC backwards (clamped at zero), the
// "jump back in time" manipulation the monitoring thread must detect.
func (c *TSC) Jump(delta int64, t Instant) {
	c.rebase(t)
	c.base += float64(delta)
	if c.base < 0 {
		c.base = 0
	}
	c.notify(t)
}

// TimeOfReaching returns the reference instant at which the guest TSC
// will reach the absolute target value, assuming no further
// manipulation. If the target is already passed, it returns from.
func (c *TSC) TimeOfReaching(target uint64, from Instant) Instant {
	cur := c.ReadAt(from)
	if cur >= target {
		return from
	}
	seconds := float64(target-cur) / (c.scale * c.hostHz)
	return from.Add(time.Duration(seconds * float64(time.Second)))
}

// TimeOfTicksAfter returns the reference instant at which the guest TSC
// will have advanced by ticks beyond its value at from, assuming no
// further manipulation. This is how in-enclave TSC-deadline timers are
// mapped onto the simulation's event queue.
func (c *TSC) TimeOfTicksAfter(from Instant, ticks uint64) Instant {
	if from < c.baseAt {
		from = c.baseAt
	}
	seconds := float64(ticks) / (c.scale * c.hostHz)
	return from.Add(time.Duration(seconds * float64(time.Second)))
}

// GuestHz reports the apparent guest tick rate (scale * hostHz).
func (c *TSC) GuestHz() float64 { return c.scale * c.hostHz }

// Core models the execution core the TSC-monitoring enclave thread is
// pinned to. With the "performance" frequency-scaling governor the core
// runs at a fixed maximum frequency, which is what makes INC-instruction
// counting a reliable TSC cross-check (paper §IV-A.1).
type Core struct {
	// FreqHz is the core's cycle rate. The paper's machine runs the
	// monitoring core at 3500 MHz under the performance governor.
	FreqHz float64
	// CyclesPerINC is the core-cycle cost of one monitoring-loop
	// iteration (TSC read + compare + counter increment). The paper's
	// measured mean of 632182 INC per 15e6 TSC ticks implies ~28.64
	// cycles per iteration on its machine.
	CyclesPerINC float64
}

// PaperCoreHz is the monitoring core's fixed frequency on the paper's
// machine under the performance governor: 3500 MHz.
const PaperCoreHz = 3500e6

// PaperINCPer15MTicks is the paper's measured mean INC count while the
// TSC advances by 15e6 ticks (§IV-A.1, outliers removed).
const PaperINCPer15MTicks = 632182

// PaperCyclesPerINC is the per-iteration cycle cost that reproduces the
// paper's measured INC counts on its 3500 MHz / 2899.999 MHz machine.
const PaperCyclesPerINC = 15e6 * (PaperCoreHz / NominalTSCHz) / PaperINCPer15MTicks

// PaperCore is the monitoring core of the paper's evaluation machine.
func PaperCore() Core {
	return Core{FreqHz: PaperCoreHz, CyclesPerINC: PaperCyclesPerINC}
}

// INCPerTicks returns the ideal number of monitoring-loop iterations
// ("INC instructions" in the paper's terminology) executed while the
// *host* TSC advances by ticks. The paper's headline figure: counting
// until the TSC incremented by 15e6 at 2899.999 MHz / 3500 MHz yields a
// mean of 632182 INC.
func (c Core) INCPerTicks(ticks float64, tscHostHz float64) float64 {
	cycles := c.CyclesPerINC
	if cycles <= 0 {
		cycles = 1
	}
	return ticks * c.FreqHz / (tscHostHz * cycles)
}
