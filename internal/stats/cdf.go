package stats

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function over a set of
// observations. The paper's Figure 1 plots CDFs of inter-AEX delays; the
// experiment harness reproduces them with this type.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the observations. The input is
// copied and may be reused by the caller.
func NewCDF(xs []float64) *CDF {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return &CDF{sorted: cp}
}

// N reports the number of observations.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of observations at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// scan forward over ties so we count every observation <= x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using nearest-rank
// interpolation. Quantile(0) is the minimum and Quantile(1) the maximum.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Point is one (x, P(X<=x)) coordinate of a rendered CDF curve.
type Point struct {
	X float64
	P float64
}

// Points renders the CDF as a step curve with one point per distinct
// observation, suitable for plotting or for printing a figure's series.
func (c *CDF) Points() []Point {
	pts := make([]Point, 0, len(c.sorted))
	n := float64(len(c.sorted))
	for i := 0; i < len(c.sorted); i++ {
		// Collapse ties: emit one point per distinct value with the
		// cumulative probability after the last tie.
		if i+1 < len(c.sorted) && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		pts = append(pts, Point{X: c.sorted[i], P: float64(i+1) / n})
	}
	return pts
}

// Histogram counts observations into uniform-width bins over [lo, hi).
// Observations outside the range are clamped into the edge bins so no
// sample is silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
// bins must be >= 1 and hi > lo; otherwise a single-bin histogram over the
// degenerate range is returned.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total reports the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}
