package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{10, 532, 1590}) // the Triad-like gap values, in ms
	if c.N() != 3 {
		t.Fatalf("N = %d, want 3", c.N())
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{5, 0},
		{10, 1.0 / 3},
		{531, 1.0 / 3},
		{532, 2.0 / 3},
		{1590, 1},
		{1e9, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.At(0)) || !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF should report NaN")
	}
}

func TestCDFWithTies(t *testing.T) {
	c := NewCDF([]float64{1, 1, 1, 2})
	if got := c.At(1); got != 0.75 {
		t.Errorf("At(1) = %v, want 0.75", got)
	}
	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("Points() collapsed ties into %d points, want 2", len(pts))
	}
	if pts[0] != (Point{X: 1, P: 0.75}) || pts[1] != (Point{X: 2, P: 1}) {
		t.Errorf("Points() = %v", pts)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := c.Quantile(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestCDFQuantileInterpolates(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	if got := c.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
}

func TestCDFProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		// Monotone non-decreasing over the observed range and ending at 1.
		pts := c.Points()
		prev := 0.0
		for _, p := range pts {
			if p.P < prev {
				return false
			}
			prev = p.P
		}
		if pts[len(pts)-1].P != 1 {
			return false
		}
		// Quantiles bounded by min/max.
		mn, mx := c.Quantile(0), c.Quantile(1)
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		return mn == sorted[0] && mx == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 9.9, -5, 100} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	// Bins: [0,2) [2,4) [4,6) [6,8) [8,10); -5 clamps low, 100 clamps high.
	want := []int{3, 1, 0, 0, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("Counts[%d] = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid range and bin count
	h.Add(5)
	if h.Total() != 1 || len(h.Counts) != 1 {
		t.Errorf("degenerate histogram mishandled: %+v", h)
	}
}
