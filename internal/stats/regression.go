package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sample is one (x, y) observation fed to a regression. In Triad's
// calibration, x is the sleep duration requested from the Time Authority
// (in seconds of reference time) and y is the TSC increment measured over
// the uninterrupted roundtrip.
type Sample struct {
	X float64
	Y float64
}

// Fit is the result of a linear regression y = Slope*x + Intercept.
// For calibration, Slope is the estimated TSC rate in ticks per second
// and Intercept absorbs the roundtrip network delay (in ticks).
type Fit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination in [0, 1]; it is 1 for a
	// perfect linear fit and NaN when the variance of y is zero.
	R2 float64
	// N is the number of samples the fit was computed from.
	N int
}

// Eval returns the fitted value at x.
func (f Fit) Eval(x float64) float64 { return f.Slope*x + f.Intercept }

var (
	// ErrTooFewSamples is returned when a regression is requested over
	// fewer than two samples.
	ErrTooFewSamples = errors.New("stats: regression needs at least two samples")
	// ErrDegenerateX is returned when all x values coincide, so no slope
	// can be identified.
	ErrDegenerateX = errors.New("stats: regression x values are all identical")
)

// OLS computes an ordinary least-squares fit of y on x. This mirrors the
// paper's calibration: a regression over requested waittimes and measured
// TSC increments whose slope is the TSC increment rate with respect to the
// Time Authority's reference time.
func OLS(samples []Sample) (Fit, error) {
	n := len(samples)
	if n < 2 {
		return Fit{}, ErrTooFewSamples
	}
	var sx, sy float64
	for _, s := range samples {
		sx += s.X
		sy += s.Y
	}
	mx := sx / float64(n)
	my := sy / float64(n)
	var sxx, sxy, syy float64
	for _, s := range samples {
		dx := s.X - mx
		dy := s.Y - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, ErrDegenerateX
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := math.NaN()
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// TheilSen computes a robust median-of-pairwise-slopes fit. The resilient
// protocol variant (DESIGN.md §V) uses it so that a minority of delayed
// calibration responses cannot steer the estimated TSC rate, unlike OLS
// where a single delayed high-s or low-s response shifts the slope.
func TheilSen(samples []Sample) (Fit, error) {
	n := len(samples)
	if n < 2 {
		return Fit{}, ErrTooFewSamples
	}
	slopes := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := samples[j].X - samples[i].X
			if dx == 0 {
				continue
			}
			slopes = append(slopes, (samples[j].Y-samples[i].Y)/dx)
		}
	}
	if len(slopes) == 0 {
		return Fit{}, ErrDegenerateX
	}
	slope := Median(slopes)
	// Intercept: median of residual offsets, the standard Theil-Sen choice.
	offsets := make([]float64, len(samples))
	for i, s := range samples {
		offsets[i] = s.Y - slope*s.X
	}
	intercept := Median(offsets)
	return Fit{Slope: slope, Intercept: intercept, R2: math.NaN(), N: n}, nil
}

// Median returns the median of xs. It copies the input, so the caller's
// slice is left untouched. It returns NaN for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	m := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[m]
	}
	return (cp[m-1] + cp[m]) / 2
}

// PPM expresses the relative error of got with respect to want in
// parts-per-million. The paper reports calibrated-clock drift rates this
// way (e.g. "all nodes drift at around 110ppm").
func PPM(got, want float64) float64 {
	if want == 0 {
		return math.NaN()
	}
	return (got - want) / want * 1e6
}

// FormatHz renders a frequency in MHz with the precision used by the
// paper's figure captions (e.g. "2900.089MHz").
func FormatHz(hz float64) string {
	return fmt.Sprintf("%.3fMHz", hz/1e6)
}
