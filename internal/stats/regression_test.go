package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestOLSExactLine(t *testing.T) {
	samples := []Sample{{0, 1}, {1, 3}, {2, 5}, {3, 7}}
	fit, err := OLS(samples)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.Eval(10); math.Abs(got-21) > 1e-12 {
		t.Errorf("Eval(10) = %v, want 21", got)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("OLS(nil) err = %v, want ErrTooFewSamples", err)
	}
	if _, err := OLS([]Sample{{1, 1}}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("OLS(1 sample) err = %v, want ErrTooFewSamples", err)
	}
	if _, err := OLS([]Sample{{1, 1}, {1, 2}}); !errors.Is(err, ErrDegenerateX) {
		t.Errorf("OLS(same x) err = %v, want ErrDegenerateX", err)
	}
}

// TestOLSCalibrationShape exercises the exact setting of Triad's
// calibration: samples at s=0 and s=1 second, y in TSC ticks, with a
// constant network delay folded into every measurement. The slope must
// recover the true TSC rate and the intercept the delay, demonstrating
// why the paper's regression cancels the roundtrip offset.
func TestOLSCalibrationShape(t *testing.T) {
	const (
		ftsc  = 2.9e9 // ticks per second
		delay = 200e-6
	)
	var samples []Sample
	for i := 0; i < 8; i++ {
		samples = append(samples,
			Sample{X: 0, Y: ftsc * delay},
			Sample{X: 1, Y: ftsc * (1 + delay)},
		)
	}
	fit, err := OLS(samples)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	if math.Abs(fit.Slope-ftsc) > 1 {
		t.Errorf("slope = %v, want %v", fit.Slope, ftsc)
	}
	if math.Abs(fit.Intercept-ftsc*delay) > 1 {
		t.Errorf("intercept = %v, want %v", fit.Intercept, ftsc*delay)
	}
}

// TestOLSFPlusAttackShape verifies the analytical core of the paper's F+
// attack: adding 100ms of delay only to the s=1 responses inflates the
// estimated rate by ~10%, i.e. 2900MHz -> ~3190MHz.
func TestOLSFPlusAttackShape(t *testing.T) {
	const ftsc = 2.9e9
	samples := []Sample{
		{X: 0, Y: ftsc * 100e-6},
		{X: 1, Y: ftsc * (1 + 100e-6 + 0.100)}, // attacker adds 100ms
	}
	fit, err := OLS(samples)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	want := ftsc * 1.1
	if math.Abs(fit.Slope-want)/want > 1e-6 {
		t.Errorf("slope under F+ = %v, want ~%v", fit.Slope, want)
	}
}

func TestOLSRecoversRandomLines(t *testing.T) {
	// Property: OLS recovers slope/intercept of noise-free random lines.
	rng := rand.New(rand.NewPCG(1, 2))
	f := func(rawSlope, rawIntercept int16) bool {
		slope := float64(rawSlope)
		intercept := float64(rawIntercept)
		samples := make([]Sample, 0, 10)
		for i := 0; i < 10; i++ {
			x := rng.Float64() * 10
			samples = append(samples, Sample{X: x, Y: slope*x + intercept})
		}
		fit, err := OLS(samples)
		if err != nil {
			return errors.Is(err, ErrDegenerateX)
		}
		return math.Abs(fit.Slope-slope) < 1e-6*(1+math.Abs(slope)) &&
			math.Abs(fit.Intercept-intercept) < 1e-5*(1+math.Abs(intercept))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTheilSenRobustToOutlier(t *testing.T) {
	// Nine honest samples on y=2x+1, one wildly delayed response. OLS is
	// dragged away from the true slope; Theil-Sen stays on it.
	samples := []Sample{
		{0, 1}, {1, 3}, {2, 5}, {3, 7}, {4, 9},
		{5, 11}, {6, 13}, {7, 15}, {8, 17},
		{9, 1000}, // attacker-delayed measurement
	}
	robust, err := TheilSen(samples)
	if err != nil {
		t.Fatalf("TheilSen: %v", err)
	}
	if math.Abs(robust.Slope-2) > 0.2 {
		t.Errorf("TheilSen slope = %v, want ~2", robust.Slope)
	}
	ols, err := OLS(samples)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	if math.Abs(ols.Slope-2) < 1 {
		t.Errorf("OLS slope = %v; expected it to be visibly corrupted by the outlier", ols.Slope)
	}
}

func TestTheilSenErrors(t *testing.T) {
	if _, err := TheilSen([]Sample{{1, 1}}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v, want ErrTooFewSamples", err)
	}
	if _, err := TheilSen([]Sample{{1, 1}, {1, 5}}); !errors.Is(err, ErrDegenerateX) {
		t.Errorf("err = %v, want ErrDegenerateX", err)
	}
}

func TestTheilSenMatchesOLSOnPerfectLine(t *testing.T) {
	samples := []Sample{{0, -1}, {1, 1}, {2, 3}, {3, 5}}
	ts, err := TheilSen(samples)
	if err != nil {
		t.Fatalf("TheilSen: %v", err)
	}
	if math.Abs(ts.Slope-2) > 1e-12 || math.Abs(ts.Intercept+1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept -1", ts)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"single", []float64{7}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.xs); got != tt.want {
				t.Errorf("Median(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestPPM(t *testing.T) {
	if got := PPM(2900.11e6, 2900e6); math.Abs(got-37.93) > 0.01 {
		t.Errorf("PPM = %v, want ~37.93", got)
	}
	if got := PPM(1, 1); got != 0 {
		t.Errorf("PPM(1,1) = %v, want 0", got)
	}
	if !math.IsNaN(PPM(1, 0)) {
		t.Error("PPM with zero reference should be NaN")
	}
}

func TestFormatHz(t *testing.T) {
	if got := FormatHz(2900.089e6); got != "2900.089MHz" {
		t.Errorf("FormatHz = %q", got)
	}
}

func BenchmarkOLS(b *testing.B) {
	samples := make([]Sample, 16)
	for i := range samples {
		samples[i] = Sample{X: float64(i % 2), Y: 2.9e9 * float64(i%2+1)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OLS(samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheilSen(b *testing.B) {
	samples := make([]Sample, 16)
	for i := range samples {
		samples[i] = Sample{X: float64(i), Y: 2*float64(i) + 1}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TheilSen(samples); err != nil {
			b.Fatal(err)
		}
	}
}
