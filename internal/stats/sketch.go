package stats

import "math"

// Sketch layout: power-of-two octaves split log-linearly into
// sketchSubBuckets slices. The covered magnitude range is
// [2^sketchMinExp, 2^sketchMaxExp); values outside clamp into the edge
// buckets (like metrics.Histogram's overflow bucket, a known bound is
// reported rather than an extrapolation).
const (
	sketchSubBuckets = 8
	sketchMinExp     = -64 // 2^-64 ≈ 5.4e-20: far below any observable
	sketchMaxExp     = 64  // 2^64 ≈ 1.8e19: far above any observable
	sketchBuckets    = (sketchMaxExp - sketchMinExp) * sketchSubBuckets
)

// Sketch is a fixed-memory streaming quantile/CDF accumulator: a
// power-of-two-bucket histogram with log-linear sub-buckets and
// interpolated quantiles, the float64 counterpart of
// metrics.Histogram. Adding a sample is O(1) and allocation-free, the
// memory footprint is fixed at construction-free (the zero value is
// ready to use), and quantiles resolve to within one bucket width —
// a relative error of 2^(1/8)-1 ≈ 9% — which is what lets experiment
// figures stop retaining per-sample []float64 slices at thousand-node
// scale. Signed values are supported: negatives mirror into their own
// bucket array, zeros get a dedicated counter.
type Sketch struct {
	pos  [sketchBuckets]uint32
	neg  [sketchBuckets]uint32
	zero uint64
	n    uint64
	sum  float64
	min  float64
	max  float64
}

// sketchBucket maps a positive magnitude to its bucket index.
func sketchBucket(x float64) int {
	frac, exp := math.Frexp(x) // x = frac * 2^exp, frac in [0.5, 1)
	// Octave [2^(exp-1), 2^exp) holds x; slice it log-linearly by frac.
	idx := (exp-1-sketchMinExp)*sketchSubBuckets + int((frac*2-1)*sketchSubBuckets)
	if idx < 0 {
		return 0
	}
	if idx >= sketchBuckets {
		return sketchBuckets - 1
	}
	return idx
}

// sketchBounds returns bucket i's value range [lo, hi).
func sketchBounds(i int) (lo, hi float64) {
	oct := i / sketchSubBuckets
	sub := i % sketchSubBuckets
	base := math.Ldexp(1, oct+sketchMinExp) // 2^(minExp+oct): octave lower edge
	w := base / sketchSubBuckets
	return base + float64(sub)*w, base + float64(sub+1)*w
}

// Add folds one observation into the sketch. NaN is ignored (a
// telemetry path must never poison the aggregate); infinities clamp
// into the edge buckets.
//
//triad:hotpath
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	s.n++
	s.sum += x
	switch {
	case x == 0:
		s.zero++
	case x > 0:
		s.pos[sketchBucket(x)]++
	default:
		s.neg[sketchBucket(-x)]++
	}
}

// N reports the number of observations recorded.
func (s *Sketch) N() int { return int(s.n) }

// Min reports the smallest observation, or 0 if none were added.
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest observation, or 0 if none were added.
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Mean reports the arithmetic mean, or 0 if no observations were added.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Merge folds another sketch's observations into this one. Merging is
// exact: the combined sketch is identical to one that saw both input
// streams, which is what lets partition-parallel simulations aggregate
// per-node distributions deterministically.
func (s *Sketch) Merge(o *Sketch) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = o.min, o.max
	} else {
		s.min = math.Min(s.min, o.min)
		s.max = math.Max(s.max, o.max)
	}
	for i := range s.pos {
		s.pos[i] += o.pos[i]
		s.neg[i] += o.neg[i]
	}
	s.zero += o.zero
	s.n += o.n
	s.sum += o.sum
}

// Reset forgets all observations, returning the sketch to its zero
// state so pooled accumulators can be reused across runs.
func (s *Sketch) Reset() { *s = Sketch{} }

// Quantile estimates the q-quantile (q in [0,1]; values outside clamp)
// by linear interpolation within the covering bucket, mirroring
// metrics.HistogramSnapshot.Quantile. The estimate is clamped to the
// observed [Min, Max], which pins the distribution's edges exactly.
// An empty sketch reports 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.n)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	est, done := s.quantileScan(&cum, rank)
	if !done {
		est = s.max
	}
	return math.Min(math.Max(est, s.min), s.max)
}

// quantileScan walks buckets in ascending value order — negatives from
// largest magnitude down, the zero bucket, then positives — and
// interpolates inside the bucket covering rank.
func (s *Sketch) quantileScan(cum *float64, rank float64) (float64, bool) {
	for i := sketchBuckets - 1; i >= 0; i-- {
		c := s.neg[i]
		if c == 0 {
			continue
		}
		lo, hi := sketchBounds(i)
		// Bucket holds magnitudes [lo, hi): as signed values the range is
		// (-hi, -lo], ascending from -hi toward -lo.
		if v, ok := interpolate(cum, rank, c, -hi, -lo); ok {
			return v, true
		}
	}
	if s.zero > 0 {
		if v, ok := interpolate(cum, rank, uint32(min64(s.zero, math.MaxUint32)), 0, 0); ok {
			return v, true
		}
		// A zero run longer than the uint32 clamp still sits at 0.
		if *cum += float64(s.zero) - float64(min64(s.zero, math.MaxUint32)); *cum >= rank {
			return 0, true
		}
	}
	for i := 0; i < sketchBuckets; i++ {
		c := s.pos[i]
		if c == 0 {
			continue
		}
		lo, hi := sketchBounds(i)
		if v, ok := interpolate(cum, rank, c, lo, hi); ok {
			return v, true
		}
	}
	return 0, false
}

// interpolate advances the cumulative count over one bucket and, if the
// rank lands inside it, returns the linearly interpolated value.
func interpolate(cum *float64, rank float64, count uint32, lo, hi float64) (float64, bool) {
	c := float64(count)
	if *cum+c < rank {
		*cum += c
		return 0, false
	}
	frac := (rank - *cum) / c
	return lo + frac*(hi-lo), true
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// At returns the empirical CDF value P(X <= x): the fraction of
// observations in buckets entirely at or below x, counting the
// covering bucket fractionally. Exact at bucket boundaries, within one
// bucket width elsewhere.
func (s *Sketch) At(x float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	// The extremes are tracked exactly, so outside them the answer is
	// known — and this also covers magnitudes clamped into the edge
	// buckets, whose bucket bounds misstate the sample's true value.
	if x >= s.max {
		return 1
	}
	if x < s.min {
		return 0
	}
	var cum float64
	for i := sketchBuckets - 1; i >= 0; i-- {
		if c := s.neg[i]; c != 0 {
			lo, hi := sketchBounds(i)
			cum += fracBelow(float64(c), -hi, -lo, x)
		}
	}
	if x >= 0 {
		cum += float64(s.zero)
	}
	for i := 0; i < sketchBuckets; i++ {
		if c := s.pos[i]; c != 0 {
			lo, hi := sketchBounds(i)
			cum += fracBelow(float64(c), lo, hi, x)
		}
	}
	return cum / float64(s.n)
}

// fracBelow reports how much of a bucket's count lies at or below x,
// taking the count as uniformly spread over [lo, hi).
func fracBelow(count, lo, hi, x float64) float64 {
	switch {
	case x < lo:
		return 0
	case x >= hi:
		return count
	default:
		return count * (x - lo) / (hi - lo)
	}
}

// SketchPoints renders the sketch as a step CDF curve with one point
// per non-empty bucket (upper edge, cumulative probability) — the
// fixed-size counterpart of CDF.Points for plotting aggregated
// distributions.
func (s *Sketch) SketchPoints() []Point {
	if s.n == 0 {
		return nil
	}
	pts := make([]Point, 0, 64)
	var cum float64
	total := float64(s.n)
	for i := sketchBuckets - 1; i >= 0; i-- {
		if c := s.neg[i]; c != 0 {
			lo, _ := sketchBounds(i)
			cum += float64(c)
			pts = append(pts, Point{X: -lo, P: cum / total})
		}
	}
	if s.zero > 0 {
		cum += float64(s.zero)
		pts = append(pts, Point{X: 0, P: cum / total})
	}
	for i := 0; i < sketchBuckets; i++ {
		if c := s.pos[i]; c != 0 {
			_, hi := sketchBounds(i)
			cum += float64(c)
			pts = append(pts, Point{X: hi, P: cum / total})
		}
	}
	return pts
}
