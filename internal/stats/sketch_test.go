package stats

import (
	"encoding/binary"
	"math"
	"math/rand/v2"
	"testing"
)

// sketchWidthAt returns the width of the bucket covering v — the
// sketch's advertised quantile resolution at that value.
func sketchWidthAt(v float64) float64 {
	if v == 0 {
		return 0
	}
	lo, hi := sketchBounds(sketchBucket(math.Abs(v)))
	return hi - lo
}

// TestSketchQuantileOracle is the sketch's accuracy contract: the
// estimate for quantile q lands within one bucket width of the exact
// order statistic its rank selects (rank = q·n clamped ≥ 1, the
// metrics.Histogram convention — the covering bucket provably holds
// the ⌈rank⌉-th order statistic), across distributions spanning the
// shapes the experiments produce (latency tails, drift values around
// zero, constants, grids). The exact order statistic is read from the
// stats.CDF oracle: CDF.Quantile((k-1)/(n-1)) is exactly the k-th
// order statistic.
func TestSketchQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	dists := []struct {
		name string
		draw func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() }},
		{"lognormal", func() float64 { return math.Exp(rng.NormFloat64() * 2) }},
		{"signed", func() float64 { return rng.NormFloat64() * 1e-3 }},
		{"grid-ms", func() float64 { return float64(rng.IntN(40)) * 1e-3 }},
		{"mixed", func() float64 {
			if rng.IntN(3) == 0 {
				return 0
			}
			return rng.NormFloat64() * math.Exp(float64(rng.IntN(20))-10)
		}},
		{"constant", func() float64 { return 0.532 }},
	}
	for _, d := range dists {
		name, draw := d.name, d.draw
		var sk Sketch
		xs := make([]float64, 5000)
		for i := range xs {
			xs[i] = draw()
			sk.Add(xs[i])
		}
		exact := NewCDF(xs)
		if sk.N() != len(xs) {
			t.Fatalf("%s: N = %d, want %d", name, sk.N(), len(xs))
		}
		n := float64(len(xs))
		for q := 0.0; q <= 1.0; q += 0.01 {
			got := sk.Quantile(q)
			rank := q * n
			if rank < 1 {
				rank = 1
			}
			// Float noise in q*n can tip ceil across an integer; accept
			// either adjacent order statistic in that case.
			ok := false
			var want, tol float64
			for _, k := range []float64{math.Ceil(rank - 1e-9), math.Ceil(rank + 1e-9)} {
				want = exact.Quantile((k - 1) / (n - 1))
				tol = sketchWidthAt(want) + 1e-12
				if math.Abs(got-want) <= tol {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s: Quantile(%.2f) = %g, exact order stat %g, |err| %g > bucket width %g",
					name, q, got, want, math.Abs(got-want), tol)
			}
		}
		if sk.Min() != exact.Quantile(0) || sk.Max() != exact.Quantile(1) {
			t.Errorf("%s: min/max %g/%g, want %g/%g", name, sk.Min(), sk.Max(), exact.Quantile(0), exact.Quantile(1))
		}
	}
}

// TestSketchAtOracle checks the CDF view against the exact CDF at the
// sample points themselves: bucket-uniform interpolation may smear
// probability by at most one bucket's worth of count.
func TestSketchAtOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	var sk Sketch
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		sk.Add(xs[i])
	}
	exact := NewCDF(xs)
	prev := -1.0
	for _, x := range []float64{-3, -1, -0.1, 0, 0.1, 1, 3} {
		got := sk.At(x)
		if got < prev {
			t.Errorf("At not monotone at %v: %v < %v", x, got, prev)
		}
		prev = got
		if want := exact.At(x); math.Abs(got-want) > 0.05 {
			t.Errorf("At(%v) = %v, exact %v", x, got, want)
		}
	}
}

func TestSketchMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	var a, b, all Sketch
	for i := 0; i < 2000; i++ {
		x := rng.NormFloat64() * math.Exp(float64(rng.IntN(10))-5)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(&b)
	if a.N() != all.N() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge N/min/max mismatch: %d/%g/%g vs %d/%g/%g",
			a.N(), a.Min(), a.Max(), all.N(), all.Min(), all.Max())
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Errorf("Quantile(%.2f): merged %g, combined-stream %g", q, got, want)
		}
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("mean: merged %g, combined %g", a.Mean(), all.Mean())
	}
}

func TestSketchEmptyAndReset(t *testing.T) {
	var sk Sketch
	if sk.Quantile(0.5) != 0 || sk.N() != 0 || sk.Min() != 0 || sk.Max() != 0 || sk.Mean() != 0 {
		t.Fatal("empty sketch should report zeros")
	}
	if !math.IsNaN(sk.At(1)) {
		t.Fatal("empty At should be NaN like CDF.At")
	}
	sk.Add(5)
	sk.Add(math.NaN()) // ignored
	if sk.N() != 1 {
		t.Fatalf("NaN not ignored: N = %d", sk.N())
	}
	sk.Reset()
	if sk.N() != 0 || sk.Quantile(1) != 0 {
		t.Fatal("reset did not clear")
	}
}

// TestSketchAddZeroAllocSteadyState gates the accumulation path the
// thousand-node harness leans on: Add must not allocate.
func TestSketchAddZeroAllocSteadyState(t *testing.T) {
	sk := new(Sketch)
	allocs := testing.AllocsPerRun(1000, func() {
		sk.Add(0.5)
		sk.Add(-1.25e-6)
		sk.Add(0)
	})
	if allocs != 0 {
		t.Fatalf("Sketch.Add allocates: %v allocs/op", allocs)
	}
}

// FuzzSketch feeds arbitrary float64 streams and checks structural
// invariants: count bookkeeping, quantile monotonicity and range,
// CDF bounds, and merge consistency.
func FuzzSketch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(-1.5)))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sk, sk2 Sketch
		n := 0
		for i := 0; i+8 <= len(data) && n < 4096; i += 8 {
			x := math.Float64frombits(binary.LittleEndian.Uint64(data[i : i+8]))
			if math.IsNaN(x) {
				continue
			}
			if math.IsInf(x, 0) {
				x = math.Copysign(math.MaxFloat64, x)
			}
			sk.Add(x)
			sk2.Add(x)
			n++
		}
		if sk.N() != n {
			t.Fatalf("N = %d, want %d", sk.N(), n)
		}
		if n == 0 {
			return
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := sk.Quantile(q)
			if v < prev {
				t.Fatalf("quantile not monotone: Q(%v)=%g < %g", q, v, prev)
			}
			if v < sk.Min() || v > sk.Max() {
				t.Fatalf("Q(%v)=%g outside [%g, %g]", q, v, sk.Min(), sk.Max())
			}
			prev = v
		}
		for _, x := range []float64{sk.Min(), 0, sk.Max()} {
			p := sk.At(x)
			if p < 0 || p > 1+1e-9 {
				t.Fatalf("At(%g) = %g outside [0,1]", x, p)
			}
		}
		if sk.At(sk.Max()) < 1-1e-9 {
			t.Fatalf("At(max) = %g, want 1", sk.At(sk.Max()))
		}
		var merged Sketch
		merged.Merge(&sk)
		merged.Merge(&sk2)
		if merged.N() != 2*n {
			t.Fatalf("merged N = %d, want %d", merged.N(), 2*n)
		}
		if merged.Quantile(0.5) != sk.Quantile(0.5) {
			t.Fatalf("self-merge shifted median: %g vs %g", merged.Quantile(0.5), sk.Quantile(0.5))
		}
	})
}
