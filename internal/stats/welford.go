// Package stats provides the numerical building blocks used across the
// Triad reproduction: running moments, quantiles, empirical CDFs,
// histograms, and the least-squares / robust regressions that back the
// protocol's TSC-rate calibration.
package stats

import "math"

// Welford accumulates mean and variance in a single numerically stable
// pass (Welford's online algorithm). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		w.min = math.Min(w.min, x)
		w.max = math.Max(w.max, x)
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddAll folds a batch of observations into the accumulator.
func (w *Welford) AddAll(xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// Merge folds another accumulator's observations into this one (Chan
// et al.'s pairwise combination), so moments accumulated in parallel
// partitions reduce to the same mean/variance as a single pass, up to
// floating-point rounding.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.min = math.Min(w.min, o.min)
	w.max = math.Max(w.max, o.max)
	w.n = n
}

// N reports the number of observations seen so far.
func (w *Welford) N() int { return w.n }

// Mean reports the running mean, or 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the unbiased sample variance (n-1 denominator).
// It returns 0 for fewer than two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev reports the unbiased sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Min reports the smallest observation, or 0 if none were added.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max reports the largest observation, or 0 if none were added.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Range reports max-min, the spread of the observations.
func (w *Welford) Range() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max - w.min
}

// Summary is a value snapshot of a Welford accumulator, convenient for
// reporting experiment results.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Snapshot captures the accumulator's current state.
func (w *Welford) Snapshot() Summary {
	return Summary{
		N:      w.n,
		Mean:   w.Mean(),
		Stddev: w.Stddev(),
		Min:    w.Min(),
		Max:    w.Max(),
	}
}

// Summarize computes a Summary over a slice in one call.
func Summarize(xs []float64) Summary {
	var w Welford
	w.AddAll(xs)
	return w.Snapshot()
}
