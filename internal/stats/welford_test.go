package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 {
		t.Errorf("N() = %d, want 0", w.N())
	}
	if w.Mean() != 0 || w.Variance() != 0 || w.Stddev() != 0 {
		t.Errorf("zero-value accumulator must report zero moments")
	}
	if w.Min() != 0 || w.Max() != 0 || w.Range() != 0 {
		t.Errorf("zero-value accumulator must report zero extremes")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(42)
	if got := w.Mean(); got != 42 {
		t.Errorf("Mean() = %v, want 42", got)
	}
	if got := w.Variance(); got != 0 {
		t.Errorf("Variance() of single sample = %v, want 0", got)
	}
	if w.Min() != 42 || w.Max() != 42 {
		t.Errorf("Min/Max = %v/%v, want 42/42", w.Min(), w.Max())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	tests := []struct {
		name       string
		xs         []float64
		mean       float64
		variance   float64
		spread     float64
		minV, maxV float64
	}{
		{"two points", []float64{1, 3}, 2, 2, 2, 1, 3},
		{"constant", []float64{5, 5, 5, 5}, 5, 0, 0, 5, 5},
		{"mixed signs", []float64{-2, 0, 2}, 0, 4, 4, -2, 2},
		{"paper-like INC counts", []float64{632180, 632182, 632184}, 632182, 4, 4, 632180, 632184},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var w Welford
			w.AddAll(tt.xs)
			if got := w.Mean(); math.Abs(got-tt.mean) > 1e-9 {
				t.Errorf("Mean() = %v, want %v", got, tt.mean)
			}
			if got := w.Variance(); math.Abs(got-tt.variance) > 1e-9 {
				t.Errorf("Variance() = %v, want %v", got, tt.variance)
			}
			if got := w.Range(); math.Abs(got-tt.spread) > 1e-9 {
				t.Errorf("Range() = %v, want %v", got, tt.spread)
			}
			if w.Min() != tt.minV || w.Max() != tt.maxV {
				t.Errorf("Min/Max = %v/%v, want %v/%v", w.Min(), w.Max(), tt.minV, tt.maxV)
			}
		})
	}
}

func TestWelfordMatchesNaiveComputation(t *testing.T) {
	// Property: the online algorithm agrees with the two-pass formula.
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			clean = append(clean, x)
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		w.AddAll(clean)
		var sum float64
		for _, x := range clean {
			sum += x
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(mean))
		if math.Abs(w.Mean()-mean) > 1e-6*scale {
			return false
		}
		vscale := math.Max(1, variance)
		return math.Abs(w.Variance()-variance) < 1e-6*vscale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	want := math.Sqrt(5.0 / 3.0)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev, want)
	}
}
