// Package t3e models T3E (Hamidy, Philippaerts, Joosen — NSS 2023), the
// TPM-based trusted-time system the paper's related work (§II-A)
// compares Triad against. It exists so the repository can reproduce the
// paper's qualitative comparison quantitatively:
//
//   - T3E reads time from a TPM colocated with the TEE and bounds
//     message-delay attacks by limiting how many times one TPM
//     timestamp may be used; when uses are depleted the TEE stalls,
//     so delaying the TPM turns into a visible throughput drop.
//   - Choosing the use quota is genuinely hard ("code-, workload- and
//     hardware-dependent"): too low and honest bursts stall, too high
//     and the attacker gets delay room. The experiment sweep
//     (internal/experiment.RunT3ETradeoff) maps that trade-off.
//   - The TPM itself is a weaker root of trust: its owner may configure
//     it to drift up to ±32.5% from real time (TPM 2.0 library spec
//     tolerance quoted by the paper), an attack Triad's Time-Authority
//     anchoring is immune to.
//
// The model runs on the discrete-event scheduler directly: the TPM is a
// local device, so no network stack is involved.
package t3e

import (
	"errors"
	"fmt"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simtime"
)

// MaxTPMDriftFrac is the TPM 2.0 specification's allowed drift-rate
// envelope the paper quotes: ±32.5% relative to real time.
const MaxTPMDriftFrac = 0.325

// ErrStalled is returned when the current TPM timestamp's uses are
// depleted and no fresh one has arrived: T3E's defence against message
// delaying is to stop serving.
var ErrStalled = errors.New("t3e: stalled awaiting fresh TPM timestamp")

// TPM models the trusted platform module: a local clock with an
// owner-configurable rate error and an attacker-controllable response
// delay (the TPM-to-TEE channel crosses the untrusted OS).
type TPM struct {
	sched *sim.Scheduler
	rng   *sim.RNG

	// RateFrac skews the TPM clock: served time advances at
	// (1+RateFrac) of real time. The spec tolerates |RateFrac| up to
	// MaxTPMDriftFrac, and an owner can exploit the full envelope.
	RateFrac float64
	// BaseDelay is the honest TPM command latency (TPMs are slow
	// devices; a few ms is typical).
	BaseDelay time.Duration
	// ExtraDelay is attacker-added latency on TPM responses.
	ExtraDelay time.Duration
}

// NewTPM creates a TPM with the given honest command latency.
func NewTPM(sched *sim.Scheduler, rng *sim.RNG, baseDelay time.Duration) *TPM {
	return &TPM{sched: sched, rng: rng, BaseDelay: baseDelay}
}

// now is the TPM's (possibly skewed) clock reading.
func (t *TPM) now() int64 {
	real := int64(t.sched.Now())
	return real + int64(float64(real)*t.RateFrac)
}

// Fetch requests a timestamp; done receives it after the (honest +
// attacker) delay. The timestamp is read when the response is sent,
// so delay makes it stale, not wrong.
func (t *TPM) Fetch(done func(ts int64)) {
	delay := t.BaseDelay + t.ExtraDelay
	if t.rng != nil {
		delay = t.rng.Jitter(delay, 0.1)
	}
	if delay < time.Microsecond {
		delay = time.Microsecond // TPM commands are never instantaneous
	}
	t.sched.After(simtime.FromDuration(delay), func() {
		done(t.now())
	})
}

// Config parameterizes a T3E node.
type Config struct {
	// UseQuota is how many times one TPM timestamp may be served before
	// the TEE stalls awaiting a fresh one. The paper's §II-A discussion
	// is about how hard this number is to pick.
	UseQuota int
	// Granularity is the smallest increment between served timestamps
	// derived from one TPM reading (T3E serves base + k·granularity).
	Granularity time.Duration
}

// Node is a T3E TEE node: it serves trusted timestamps derived from
// TPM readings under the use-quota policy.
type Node struct {
	cfg   Config
	sched *sim.Scheduler
	tpm   *TPM

	current    int64 // latest TPM timestamp
	usesLeft   int
	fetching   bool
	haveStamp  bool
	lastServed int64

	served  int
	stalled int
	fetches int
}

// NewNode creates a T3E node bound to its local TPM.
func NewNode(sched *sim.Scheduler, tpm *TPM, cfg Config) (*Node, error) {
	if cfg.UseQuota <= 0 {
		return nil, fmt.Errorf("t3e: UseQuota must be positive, got %d", cfg.UseQuota)
	}
	if cfg.Granularity <= 0 {
		cfg.Granularity = time.Microsecond
	}
	n := &Node{cfg: cfg, sched: sched, tpm: tpm}
	n.fetchLoop()
	return n, nil
}

// fetchLoop polls the TPM continuously: as soon as one command
// completes, the next is issued (TPM command latency paces the loop).
// The use quota therefore only binds when responses are delayed — the
// delay-attack defence T3E is built around.
func (n *Node) fetchLoop() {
	n.fetching = true
	n.fetches++
	n.tpm.Fetch(func(ts int64) {
		n.fetching = false
		if ts > n.current {
			n.current = ts
			n.usesLeft = n.cfg.UseQuota
			n.haveStamp = true
		}
		n.fetchLoop()
	})
}

// TrustedNow serves one trusted timestamp or stalls. Each service
// consumes one use of the current TPM reading; when the quota empties
// before a fresh reading lands, the node refuses to serve.
func (n *Node) TrustedNow() (int64, error) {
	if !n.haveStamp || n.usesLeft <= 0 {
		n.stalled++
		return 0, ErrStalled
	}
	n.usesLeft--
	ts := n.current + int64(n.cfg.Granularity)*int64(n.cfg.UseQuota-n.usesLeft)
	if ts <= n.lastServed {
		ts = n.lastServed + 1
	}
	n.lastServed = ts
	n.served++
	return ts, nil
}

// Served reports successful services; Stalled reports requests refused
// for quota exhaustion; Fetches reports TPM commands issued.
func (n *Node) Served() int  { return n.served }
func (n *Node) Stalled() int { return n.stalled }
func (n *Node) Fetches() int { return n.fetches }

// ServedError reports how far the last served timestamp was from real
// time (positive = ahead), the staleness/drift metric of the sweep.
func (n *Node) ServedError() time.Duration {
	if n.served == 0 {
		return 0
	}
	return time.Duration(n.lastServed - int64(n.sched.Now()))
}
