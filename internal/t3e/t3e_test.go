package t3e

import (
	"errors"
	"math"
	"testing"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simtime"
)

func newNode(t *testing.T, quota int, tweakTPM func(*TPM)) (*sim.Scheduler, *TPM, *Node) {
	t.Helper()
	sched := sim.NewScheduler()
	tpm := NewTPM(sched, sim.NewRNG(1), 5*time.Millisecond)
	if tweakTPM != nil {
		tweakTPM(tpm)
	}
	n, err := NewNode(sched, tpm, Config{UseQuota: quota})
	if err != nil {
		t.Fatal(err)
	}
	return sched, tpm, n
}

func TestNewNodeValidation(t *testing.T) {
	sched := sim.NewScheduler()
	tpm := NewTPM(sched, sim.NewRNG(1), time.Millisecond)
	if _, err := NewNode(sched, tpm, Config{UseQuota: 0}); err == nil {
		t.Error("zero quota accepted")
	}
}

func TestServesAfterFirstFetch(t *testing.T) {
	sched, _, n := newNode(t, 10, nil)
	// Before the first TPM response: stalled.
	if _, err := n.TrustedNow(); !errors.Is(err, ErrStalled) {
		t.Errorf("err = %v, want ErrStalled", err)
	}
	sched.RunUntil(simtime.FromDuration(20 * time.Millisecond))
	ts, err := n.TrustedNow()
	if err != nil {
		t.Fatalf("TrustedNow: %v", err)
	}
	// Timestamp is the TPM reading at response-send time: ~5ms stale.
	if got := time.Duration(int64(sched.Now()) - ts); got < 0 || got > 20*time.Millisecond {
		t.Errorf("staleness = %v", got)
	}
	if n.Served() != 1 || n.Stalled() != 1 {
		t.Errorf("served/stalled = %d/%d", n.Served(), n.Stalled())
	}
}

func TestQuotaExhaustionStalls(t *testing.T) {
	sched, tpm, n := newNode(t, 3, nil)
	sched.RunUntil(simtime.FromDuration(20 * time.Millisecond))
	// Attacker now delays the TPM heavily: the three remaining uses
	// serve, then the node stalls instead of serving stale time.
	tpm.ExtraDelay = 10 * time.Second
	for i := 0; i < 3; i++ {
		if _, err := n.TrustedNow(); err != nil {
			t.Fatalf("use %d: %v", i, err)
		}
	}
	if _, err := n.TrustedNow(); !errors.Is(err, ErrStalled) {
		t.Error("quota exhaustion should stall")
	}
	// Once the delayed response lands, service resumes.
	sched.RunUntil(sched.Now().Add(11 * time.Second))
	if _, err := n.TrustedNow(); err != nil {
		t.Errorf("after refresh: %v", err)
	}
}

func TestServedMonotonic(t *testing.T) {
	sched, _, n := newNode(t, 1000, nil)
	sched.RunUntil(simtime.FromDuration(20 * time.Millisecond))
	var last int64
	for i := 0; i < 500; i++ {
		sched.RunUntil(sched.Now().Add(time.Millisecond))
		ts, err := n.TrustedNow()
		if errors.Is(err, ErrStalled) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if ts <= last {
			t.Fatalf("ts %d <= last %d", ts, last)
		}
		last = ts
	}
}

func TestTPMOwnerDriftAttack(t *testing.T) {
	// The TPM's owner configures the full +32.5% spec envelope: T3E's
	// served time drifts with it, with nothing to detect it against.
	sched, _, n := newNode(t, 1_000_000, func(tpm *TPM) {
		tpm.RateFrac = MaxTPMDriftFrac
	})
	sched.RunUntil(simtime.FromDuration(100 * time.Second))
	ts, err := n.TrustedNow()
	if err != nil {
		t.Fatal(err)
	}
	drift := float64(ts-int64(sched.Now())) / float64(sched.Now())
	if math.Abs(drift-MaxTPMDriftFrac) > 0.01 {
		t.Errorf("served drift frac = %v, want ~%v", drift, MaxTPMDriftFrac)
	}
}

func TestDelayAttackBoundedByQuota(t *testing.T) {
	// With quota K, the attacker can at most keep K uses pointing at a
	// stale timestamp: staleness is bounded by the delay it adds, and
	// throughput collapses — the visible-failure design.
	sched, tpm, n := newNode(t, 5, nil)
	sched.RunUntil(simtime.FromDuration(20 * time.Millisecond))
	tpm.ExtraDelay = 2 * time.Second

	served, stalled := 0, 0
	worstStaleness := time.Duration(0)
	for i := 0; i < 1000; i++ {
		sched.RunUntil(sched.Now().Add(10 * time.Millisecond))
		ts, err := n.TrustedNow()
		if err != nil {
			stalled++
			continue
		}
		served++
		if s := time.Duration(int64(sched.Now()) - ts); s > worstStaleness {
			worstStaleness = s
		}
	}
	if stalled < served {
		t.Errorf("served/stalled = %d/%d: a 2s TPM delay should mostly stall a quota-5 node polled every 10ms", served, stalled)
	}
	// Staleness never exceeds the attack delay plus base latency.
	if worstStaleness > 3*time.Second {
		t.Errorf("worst staleness %v exceeds the delay bound", worstStaleness)
	}
}

func TestFetchLoopPacedByTPMLatency(t *testing.T) {
	sched, _, n := newNode(t, 1, nil)
	// Stalls do not issue extra TPM commands; the loop is paced by the
	// ~5ms command latency alone.
	n.TrustedNow()
	n.TrustedNow()
	sched.RunUntil(simtime.FromDuration(time.Second))
	// ~200 commands in one second at ~5ms (±10% jitter) per command.
	if n.Fetches() < 150 || n.Fetches() > 250 {
		t.Errorf("fetches = %d over 1s, want ~200", n.Fetches())
	}
}
