// Package trace records structured scenario events (state changes,
// calibrations, attacks, detections) as JSON lines, giving experiments
// an audit trail that can be diffed across runs or fed to external
// plotting. The simulation is deterministic, so two runs of the same
// seed produce byte-identical traces — which makes traces a regression
// oracle too.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"triadtime/internal/simtime"
)

// Event is one trace record.
type Event struct {
	// RefSeconds is the reference time of the event.
	RefSeconds float64 `json:"t"`
	// Node names the subject ("node1", "ta", "attacker").
	Node string `json:"node"`
	// Kind classifies the event ("state", "calibrated", "ta_ref",
	// "peer_untaint", "discrepancy", "attack", ...).
	Kind string `json:"kind"`
	// Detail is a human-readable payload.
	Detail string `json:"detail,omitempty"`
	// Value carries the event's numeric payload, if any (drift, rate,
	// jump nanos, ...).
	Value float64 `json:"value,omitempty"`
}

// Recorder accumulates events and optionally streams them as JSONL.
// It is safe for single-threaded simulation use; the live runtime
// wraps calls in its dispatch goroutine, so a small mutex suffices.
type Recorder struct {
	mu     sync.Mutex
	now    func() simtime.Instant
	events []Event
	sink   io.Writer
	enc    *json.Encoder
}

// NewRecorder creates a recorder that stamps events with now(). A nil
// sink keeps events in memory only. A nil now stamps zero until SetNow
// installs a clock (the experiment cluster does this on construction).
func NewRecorder(now func() simtime.Instant, sink io.Writer) *Recorder {
	r := &Recorder{now: now, sink: sink}
	if sink != nil {
		r.enc = json.NewEncoder(sink)
	}
	return r
}

// SetNow installs (or replaces) the clock used to stamp events.
func (r *Recorder) SetNow(now func() simtime.Instant) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Record appends one event.
func (r *Recorder) Record(node, kind, detail string, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var at float64
	if r.now != nil {
		at = r.now().Seconds()
	}
	e := Event{
		RefSeconds: at,
		Node:       node,
		Kind:       kind,
		Detail:     detail,
		Value:      value,
	}
	r.events = append(r.events, e)
	if r.enc != nil {
		// Encoding errors (e.g. closed sink) must not break the
		// experiment; the in-memory copy remains authoritative.
		_ = r.enc.Encode(e)
	}
}

// Events returns a copy of everything recorded.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make([]Event, len(r.events))
	copy(cp, r.events)
	return cp
}

// Count reports how many events of the given kind were recorded
// ("" counts everything).
func (r *Recorder) Count(kind string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if kind == "" {
		return len(r.events)
	}
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// NodeEvents wraps core.Events-shaped hooks for one node, so wiring a
// recorder into a cluster is one call per node. It returns the hook
// functions rather than depending on the core package (avoiding an
// import cycle and keeping trace reusable for resilient nodes).
type NodeEvents struct {
	StateChanged func(oldName, newName string)
	Calibrated   func(fCalib float64)
	TAReference  func()
	PeerUntaint  func(from uint32, jumpNanos int64)
	Discrepancy  func(rel float64)
}

// ForNode builds standard hooks recording under the given node name.
func (r *Recorder) ForNode(name string) NodeEvents {
	return NodeEvents{
		StateChanged: func(oldName, newName string) {
			r.Record(name, "state", fmt.Sprintf("%s->%s", oldName, newName), 0)
		},
		Calibrated: func(fCalib float64) {
			r.Record(name, "calibrated", "", fCalib)
		},
		TAReference: func() {
			r.Record(name, "ta_ref", "", 0)
		},
		PeerUntaint: func(from uint32, jumpNanos int64) {
			r.Record(name, "peer_untaint", fmt.Sprintf("from=%d", from), float64(jumpNanos))
		},
		Discrepancy: func(rel float64) {
			r.Record(name, "discrepancy", "", rel)
		},
	}
}
