package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"triadtime/internal/simtime"
)

func fixedNow(d time.Duration) func() simtime.Instant {
	return func() simtime.Instant { return simtime.FromDuration(d) }
}

func TestRecordAndQuery(t *testing.T) {
	r := NewRecorder(fixedNow(3*time.Second), nil)
	r.Record("node1", "state", "Init->FullCalib", 0)
	r.Record("node1", "calibrated", "", 2.9e9)
	r.Record("node2", "state", "Init->FullCalib", 0)

	if r.Count("") != 3 || r.Count("state") != 2 || r.Count("calibrated") != 1 {
		t.Errorf("counts = %d/%d/%d", r.Count(""), r.Count("state"), r.Count("calibrated"))
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].RefSeconds != 3 || evs[1].Value != 2.9e9 {
		t.Errorf("events = %+v", evs)
	}
	// Events() is a copy.
	evs[0].Node = "mutated"
	if r.Events()[0].Node != "node1" {
		t.Error("Events exposed internal storage")
	}
}

func TestJSONLSink(t *testing.T) {
	var b strings.Builder
	r := NewRecorder(fixedNow(time.Second), &b)
	r.Record("node1", "ta_ref", "", 0)
	r.Record("attacker", "attack", "F- engaged", 0)

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Node != "attacker" || e.Kind != "attack" || e.Detail != "F- engaged" || e.RefSeconds != 1 {
		t.Errorf("decoded = %+v", e)
	}
}

func TestForNodeHooks(t *testing.T) {
	r := NewRecorder(fixedNow(0), nil)
	hooks := r.ForNode("node3")
	hooks.StateChanged("OK", "Tainted")
	hooks.Calibrated(3.19e9)
	hooks.TAReference()
	hooks.PeerUntaint(2, 50_000_000)
	hooks.Discrepancy(0.09)

	if r.Count("") != 5 {
		t.Fatalf("count = %d", r.Count(""))
	}
	evs := r.Events()
	if evs[0].Detail != "OK->Tainted" {
		t.Errorf("state detail = %q", evs[0].Detail)
	}
	if evs[3].Kind != "peer_untaint" || evs[3].Value != 50_000_000 || evs[3].Detail != "from=2" {
		t.Errorf("untaint event = %+v", evs[3])
	}
	for _, e := range evs {
		if e.Node != "node3" {
			t.Errorf("event attributed to %q", e.Node)
		}
	}
}
