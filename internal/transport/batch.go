package transport

import (
	"net"
	"time"
)

// Batch is a preallocated scatter/gather array for one batched receive
// or send: up to Size fixed-capacity payload buffers with their
// datagram lengths and peer addresses, plus (on Linux) the mmsghdr /
// iovec / raw-sockaddr arrays a recvmmsg or sendmmsg call consumes,
// wired to the payload buffers once at construction. A Batch belongs to
// ONE goroutine: receive loops own a receive batch, drain loops own a
// send batch, and the same socket may be driven by several goroutines
// as long as each brings its own Batch.
type Batch struct {
	bufs  [][]byte
	lens  []int
	addrs []Sockaddr

	// sys is the platform layer (mmsg headers on Linux, nothing
	// elsewhere); see batchudp_linux.go / batchudp_fallback.go.
	sys batchSys

	// udpScratch/ipScratch let fallback send paths build a net.UDPAddr
	// per datagram without allocating.
	udpScratch net.UDPAddr
	ipScratch  [16]byte
}

// NewBatch creates a batch of n message slots of msgSize bytes each.
func NewBatch(n, msgSize int) *Batch {
	if n <= 0 {
		n = 1
	}
	if msgSize <= 0 {
		msgSize = 2048
	}
	b := &Batch{
		bufs:  make([][]byte, n),
		lens:  make([]int, n),
		addrs: make([]Sockaddr, n),
	}
	backing := make([]byte, n*msgSize)
	for i := range b.bufs {
		b.bufs[i] = backing[i*msgSize : (i+1)*msgSize : (i+1)*msgSize]
	}
	b.sys.init(b)
	return b
}

// Size reports the batch's slot count.
func (b *Batch) Size() int { return len(b.bufs) }

// Buffer returns slot i's full-capacity, zero-length payload buffer for
// building an outgoing datagram (append into it, then Set).
//
//triad:hotpath
func (b *Batch) Buffer(i int) []byte { return b.bufs[i][:0] }

// Set records slot i's outgoing payload length and destination. The
// payload must already be in Buffer(i)'s backing array (append-style
// sealing keeps it there). A zero Sockaddr addresses the connected
// peer (connected sockets only).
//
//triad:hotpath
func (b *Batch) Set(i, payloadLen int, to Sockaddr) {
	b.lens[i] = payloadLen
	b.addrs[i] = to
}

// Payload returns slot i's received datagram.
//
//triad:hotpath
func (b *Batch) Payload(i int) []byte { return b.bufs[i][:b.lens[i]] }

// Len reports slot i's datagram length.
//
//triad:hotpath
func (b *Batch) Len(i int) int { return b.lens[i] }

// Addr reports slot i's peer address (source on receive, destination
// on send).
//
//triad:hotpath
func (b *Batch) Addr(i int) Sockaddr { return b.addrs[i] }

// DatagramConn is a UDP socket driven in batches. RecvBatch blocks for
// at least one datagram (honoring the socket's read deadline) and
// SendBatch transmits slots [0,n). On Linux both map to one
// recvmmsg/sendmmsg syscall per call (BatchConn); everywhere — and for
// arbitrary net.PacketConn values — PacketBatchConn degrades to one
// datagram per syscall with identical semantics. Implementations are
// safe for one receiver goroutine plus concurrent sender goroutines,
// each using its own Batch.
type DatagramConn interface {
	RecvBatch(b *Batch) (int, error)
	SendBatch(b *Batch, n int) (int, error)
	LocalAddr() net.Addr
}

// PacketBatchConn adapts any net.PacketConn to the DatagramConn
// interface, one datagram per syscall: the portable path for test
// stubs and caller-supplied sockets.
type PacketBatchConn struct {
	conn net.PacketConn
}

// NewPacketBatchConn wraps conn. The caller keeps ownership (Close,
// deadlines).
func NewPacketBatchConn(conn net.PacketConn) *PacketBatchConn {
	return &PacketBatchConn{conn: conn}
}

// RecvBatch receives one datagram into slot 0.
//
//triad:hotpath
func (c *PacketBatchConn) RecvBatch(b *Batch) (int, error) {
	n, from, err := c.conn.ReadFrom(b.bufs[0][:cap(b.bufs[0])])
	if err != nil {
		return 0, err
	}
	b.lens[0] = n
	u, _ := from.(*net.UDPAddr)
	b.addrs[0], _ = SockaddrFromUDP(u)
	return 1, nil
}

// SendBatch transmits slots [0,n) one WriteTo at a time, reporting how
// many sends succeeded and the first error encountered (later slots
// are still attempted: UDP write errors are per-datagram).
//
//triad:hotpath
func (c *PacketBatchConn) SendBatch(b *Batch, n int) (int, error) {
	sent := 0
	var firstErr error
	for i := 0; i < n; i++ {
		a := b.addrs[i]
		if a.IsZero() {
			// Unconnected PacketConn sends need a destination.
			continue
		}
		a.PutUDP(&b.udpScratch, b.ipScratch[:])
		//triad:nolint:hotpath pointer-into-interface boxing does not allocate; the scratch addr is reused
		if _, err := c.conn.WriteTo(b.bufs[i][:b.lens[i]], &b.udpScratch); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// LocalAddr reports the wrapped socket's bound address.
func (c *PacketBatchConn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// pastDeadline is the deadline used to unblock receive loops during
// shutdown: any moment firmly in the past.
var pastDeadline = time.Unix(1, 0)

// InterruptReads unblocks current and future reads on conn by moving
// its read deadline into the past. Serving shutdown uses it to stop
// intake while keeping the socket writable for the final response
// flush.
func InterruptReads(conn net.PacketConn) error {
	return conn.SetReadDeadline(pastDeadline)
}
