//go:build !linux || !amd64

// Portable fallback for the batched UDP path: the same Batch /
// BatchConn surface, one datagram per syscall. Non-Linux builds (and
// Linux architectures whose sendmmsg number the frozen syscall package
// hides) stay correct; only the syscall amortization is lost.

package transport

import "net"

// BatchSyscalls reports that this build moves one datagram per kernel
// crossing.
const BatchSyscalls = false

// batchSys is empty on the fallback path: there are no scatter/gather
// headers to prepare.
type batchSys struct{}

func (s *batchSys) init(b *Batch) {}

// BatchConn drives one *net.UDPConn a datagram at a time, mirroring
// the Linux batched implementation's semantics.
type BatchConn struct {
	conn *net.UDPConn
}

// NewBatchConn wraps conn. The caller keeps ownership (Close,
// deadlines).
func NewBatchConn(conn *net.UDPConn) (*BatchConn, error) {
	return &BatchConn{conn: conn}, nil
}

// RecvBatch receives one datagram into slot 0. (ReadFromUDP allocates
// its source address on this path; the Linux build decodes into
// preallocated raw-sockaddr storage instead.)
func (c *BatchConn) RecvBatch(b *Batch) (int, error) {
	n, from, err := c.conn.ReadFromUDP(b.bufs[0][:cap(b.bufs[0])])
	if err != nil {
		return 0, err
	}
	b.lens[0] = n
	b.addrs[0], _ = SockaddrFromUDP(from)
	return 1, nil
}

// SendBatch transmits slots [0,n) one write at a time, reporting how
// many sends succeeded and the first error encountered (later slots
// are still attempted: UDP write errors are per-datagram).
func (c *BatchConn) SendBatch(b *Batch, n int) (int, error) {
	sent := 0
	var firstErr error
	for i := 0; i < n; i++ {
		var err error
		if a := b.addrs[i]; a.IsZero() {
			_, err = c.conn.Write(b.bufs[i][:b.lens[i]])
		} else {
			a.PutUDP(&b.udpScratch, b.ipScratch[:])
			_, err = c.conn.WriteToUDP(b.bufs[i][:b.lens[i]], &b.udpScratch)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// LocalAddr reports the bound UDP address.
func (c *BatchConn) LocalAddr() net.Addr { return c.conn.LocalAddr() }
