//go:build linux && amd64

// Batched UDP syscalls: one recvmmsg/sendmmsg kernel crossing moves a
// whole Batch of datagrams, which is what lets the serving drain tick
// write its entire response batch without paying one syscall per
// client. Raw syscall numbers are used directly (the frozen stdlib
// syscall package predates sendmmsg), integrated with the runtime
// netpoller through syscall.RawConn — no new dependencies.

package transport

import (
	"errors"
	"fmt"
	"net"
	"syscall"
	"unsafe"
)

// sysSENDMMSG is the linux/amd64 sendmmsg syscall number; the frozen
// syscall package exports SYS_RECVMMSG but predates sendmmsg.
const sysSENDMMSG = 307

// UDP generalized segmentation offload: with UDP_SEGMENT set on a
// socket, one send of concatenated payloads is split by the kernel
// into datagrams of the configured segment size — the per-datagram
// cost of the loopback/driver TX path (~2.4µs here) collapses to the
// per-segment cost (~0.3µs). The constants predate the frozen syscall
// package.
const (
	solUDP     = 17  // SOL_UDP
	udpSegment = 103 // UDP_SEGMENT
	gsoMaxSegs = 64  // kernel UDP_MAX_SEGMENTS floor across GSO-capable kernels
)

// errGSOSegmentSize is returned when a slot exceeds the socket's GSO
// segment size (the kernel would split it mid-datagram).
var errGSOSegmentSize = errors.New("transport: datagram exceeds GSO segment size")

// BatchSyscalls reports that this build moves whole batches per
// kernel crossing.
const BatchSyscalls = true

// mmsghdr mirrors the kernel's struct mmsghdr: one msghdr plus the
// kernel-reported datagram length.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// batchSys is the Linux scatter/gather layer of a Batch: mmsg headers
// wired once to the payload buffers, per-slot raw sockaddr storage,
// and pre-bound raw-callback method values so RecvBatch/SendBatch
// allocate no closures. Per-call state rides in fields because the
// netpoller callback signature carries only the fd; a Batch (and with
// it this state) belongs to one goroutine.
type batchSys struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6

	// segs[h] is how many Batch slots header h covers: 1 without GSO,
	// a same-destination run of up to gsoMaxSegs with it. Partial-send
	// accounting maps kernel-accepted headers back to datagrams.
	segs []int

	recvFn, sendFn   func(fd uintptr) bool
	res              int
	errno            syscall.Errno
	sendFrom, sendTo int
}

func (s *batchSys) init(b *Batch) {
	n := len(b.bufs)
	s.hdrs = make([]mmsghdr, n)
	s.iovs = make([]syscall.Iovec, n)
	s.names = make([]syscall.RawSockaddrInet6, n)
	s.segs = make([]int, n)
	for i := range s.hdrs {
		s.iovs[i].Base = &b.bufs[i][0]
		s.iovs[i].SetLen(cap(b.bufs[i]))
		s.hdrs[i].hdr.Iov = &s.iovs[i]
		s.hdrs[i].hdr.Iovlen = 1
	}
	s.recvFn = s.rawRecv
	s.sendFn = s.rawSend
}

// rawRecv is the netpoller read callback: false on EAGAIN re-arms the
// poller, anything else completes the call with res/errno set.
func (s *batchSys) rawRecv(fd uintptr) bool {
	n, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
		uintptr(unsafe.Pointer(&s.hdrs[0])), uintptr(len(s.hdrs)), 0, 0, 0)
	if errno == syscall.EAGAIN {
		return false
	}
	s.errno = errno
	s.res = int(n)
	return true
}

func (s *batchSys) rawSend(fd uintptr) bool {
	n, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(&s.hdrs[s.sendFrom])), uintptr(s.sendTo-s.sendFrom), 0, 0, 0)
	if errno == syscall.EAGAIN {
		return false
	}
	s.errno = errno
	s.res = int(n)
	return true
}

// BatchConn drives one *net.UDPConn with recvmmsg/sendmmsg. The
// struct is read-only after setup (per-call state lives in the Batch),
// so one receiver goroutine and several sender goroutines may share a
// BatchConn as long as each brings its own Batch.
type BatchConn struct {
	conn   *net.UDPConn
	rc     syscall.RawConn
	gsoSeg int
}

// NewBatchConn wraps conn. The caller keeps ownership (Close,
// deadlines).
func NewBatchConn(conn *net.UDPConn) (*BatchConn, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	return &BatchConn{conn: conn, rc: rc}, nil
}

// EnableGSO turns on UDP segmentation offload for sends: SendBatch
// then hands the kernel one segmented payload per same-destination run
// of segSize-byte datagrams instead of one header each, collapsing the
// TX path's per-datagram cost. Natural for this protocol because every
// sealed message of a given kind has one exact size. After enabling,
// every sent slot must be at most segSize bytes (runs are split so
// datagram boundaries always align). Call before the socket is shared;
// fails on kernels without UDP_SEGMENT. Receiving is unaffected.
func (c *BatchConn) EnableGSO(segSize int) error {
	if segSize <= 0 || segSize > 0xffff {
		return fmt.Errorf("transport: GSO segment size %d out of range", segSize)
	}
	var serr error
	if err := c.rc.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, segSize)
	}); err != nil {
		return err
	}
	if serr != nil {
		return fmt.Errorf("transport: set UDP_SEGMENT: %w", serr)
	}
	c.gsoSeg = segSize
	return nil
}

// RecvBatch fills b with as many queued datagrams as one recvmmsg
// returns, blocking (via the netpoller, honoring the socket's read
// deadline) until at least one arrives.
//
//triad:hotpath
func (c *BatchConn) RecvBatch(b *Batch) (int, error) {
	s := &b.sys
	for i := range s.hdrs {
		s.iovs[i].SetLen(cap(b.bufs[i]))
		// Re-wire one iovec per header: a GSO send may have regrouped
		// this Batch's headers into multi-slot runs.
		s.hdrs[i].hdr.Iov = &s.iovs[i]
		s.hdrs[i].hdr.Iovlen = 1
		s.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&s.names[i]))
		s.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
	}
	if err := c.rc.Read(s.recvFn); err != nil {
		return 0, err
	}
	if s.errno != 0 {
		return 0, s.errno
	}
	n := s.res
	for i := 0; i < n; i++ {
		b.lens[i] = int(s.hdrs[i].len)
		b.addrs[i] = decodeRawSockaddr(&s.names[i])
	}
	return n, nil
}

// SendBatch transmits slots [0,n) — one sendmmsg per kernel crossing,
// resuming after partial sends — and reports how many datagrams the
// kernel accepted. With GSO enabled, consecutive slots to the same
// destination collapse into segmented sends.
//
//triad:hotpath
func (c *BatchConn) SendBatch(b *Batch, n int) (int, error) {
	s := &b.sys
	for i := 0; i < n; i++ {
		s.iovs[i].SetLen(b.lens[i])
	}
	var hdrs int
	if c.gsoSeg > 0 {
		var err error
		if hdrs, err = s.groupGSO(b, n, c.gsoSeg); err != nil {
			return 0, err
		}
	} else {
		for i := 0; i < n; i++ {
			s.hdrs[i].hdr.Iov = &s.iovs[i]
			s.hdrs[i].hdr.Iovlen = 1
			s.setName(i, i, b)
			s.segs[i] = 1
		}
		hdrs = n
	}
	sentSlots, sentHdrs := 0, 0
	for sentHdrs < hdrs {
		s.sendFrom, s.sendTo = sentHdrs, hdrs
		if err := c.rc.Write(s.sendFn); err != nil {
			return sentSlots, err
		}
		if s.errno != 0 {
			return sentSlots, s.errno
		}
		if s.res <= 0 {
			break
		}
		for h := sentHdrs; h < sentHdrs+s.res; h++ {
			sentSlots += s.segs[h]
		}
		sentHdrs += s.res
	}
	return sentSlots, nil
}

// setName points header h's destination at slot i's address (nil name
// = the connected peer).
//
//triad:hotpath
func (s *batchSys) setName(h, i int, b *Batch) {
	if b.addrs[i].IsZero() {
		s.hdrs[h].hdr.Name = nil
		s.hdrs[h].hdr.Namelen = 0
	} else {
		s.hdrs[h].hdr.Namelen = encodeRawSockaddr(&s.names[h], b.addrs[i])
		s.hdrs[h].hdr.Name = (*byte)(unsafe.Pointer(&s.names[h]))
	}
}

// groupGSO builds one header per same-destination run of slots. A run
// stays datagram-aligned because every slot in it except the last is
// exactly seg bytes: the kernel splits the concatenated payload at seg
// boundaries, which are then exactly the slot boundaries. The per-slot
// iovecs are contiguous, so a run is expressed as an iovec subslice —
// no copying.
//
//triad:hotpath
func (s *batchSys) groupGSO(b *Batch, n, seg int) (int, error) {
	h := 0
	for i := 0; i < n; {
		if b.lens[i] > seg {
			return 0, errGSOSegmentSize
		}
		run := 1
		for i+run < n && run < gsoMaxSegs &&
			b.lens[i+run-1] == seg && // all but a run's last slot must be full-size
			b.lens[i+run] <= seg &&
			b.addrs[i+run] == b.addrs[i] {
			run++
		}
		s.hdrs[h].hdr.Iov = &s.iovs[i]
		s.hdrs[h].hdr.Iovlen = uint64(run)
		s.setName(h, i, b)
		s.segs[h] = run
		h++
		i += run
	}
	return h, nil
}

// LocalAddr reports the bound UDP address.
func (c *BatchConn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// htons converts a host-order port to network byte order.
func htons(p uint16) uint16 { return p<<8 | p>>8 }

// decodeRawSockaddr converts a kernel-filled raw sockaddr (either
// family; the storage is Inet6-sized) to a Sockaddr.
//
//triad:hotpath
func decodeRawSockaddr(src *syscall.RawSockaddrInet6) (a Sockaddr) {
	switch src.Family {
	case syscall.AF_INET:
		s4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(src))
		copy(a.IP[:4], s4.Addr[:])
		a.Port = htons(s4.Port)
	case syscall.AF_INET6:
		a.IP = src.Addr
		a.Port = htons(src.Port)
		a.V6 = true
	}
	return a
}

// encodeRawSockaddr fills dst from a and returns the namelen the
// msghdr must carry.
//
//triad:hotpath
func encodeRawSockaddr(dst *syscall.RawSockaddrInet6, a Sockaddr) uint32 {
	if a.V6 {
		dst.Family = syscall.AF_INET6
		dst.Port = htons(a.Port)
		dst.Addr = a.IP
		dst.Flowinfo = 0
		dst.Scope_id = 0
		return syscall.SizeofSockaddrInet6
	}
	d4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(dst))
	d4.Family = syscall.AF_INET
	d4.Port = htons(a.Port)
	copy(d4.Addr[:], a.IP[:4])
	return syscall.SizeofSockaddrInet4
}
