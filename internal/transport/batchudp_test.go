package transport

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

func udpPair(t *testing.T) (server *net.UDPConn, client *net.UDPConn) {
	t.Helper()
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server = spc.(*net.UDPConn)
	t.Cleanup(func() { server.Close() })
	client, err = net.DialUDP("udp", nil, server.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return server, client
}

// TestBatchRoundtrip pushes a full batch client→server and a full
// batch of replies server→client through the platform's batched (or
// fallback) syscall path.
func TestBatchRoundtrip(t *testing.T) {
	server, client := udpPair(t)
	sbc, err := NewBatchConn(server)
	if err != nil {
		t.Fatal(err)
	}
	cbc, err := NewBatchConn(client)
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	out := NewBatch(n, 64)
	for i := 0; i < n; i++ {
		payload := append(out.Buffer(i), []byte(fmt.Sprintf("req-%02d", i))...)
		out.Set(i, len(payload), Sockaddr{}) // connected socket: zero addr
	}
	if sent, err := cbc.SendBatch(out, n); err != nil || sent != n {
		t.Fatalf("client SendBatch sent %d err %v", sent, err)
	}

	in := NewBatch(n, 64)
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := map[string]Sockaddr{}
	for len(got) < n {
		k, err := sbc.RecvBatch(in)
		if err != nil {
			t.Fatalf("server RecvBatch after %d: %v", len(got), err)
		}
		for i := 0; i < k; i++ {
			if in.Addr(i).IsZero() {
				t.Fatalf("received datagram %q with zero source addr", in.Payload(i))
			}
			got[string(in.Payload(i))] = in.Addr(i)
		}
	}
	for i := 0; i < n; i++ {
		if _, ok := got[fmt.Sprintf("req-%02d", i)]; !ok {
			t.Fatalf("missing payload req-%02d; got %v", i, got)
		}
	}

	// Reply to each captured source address (unconnected sends).
	reply := NewBatch(n, 64)
	i := 0
	for msg, from := range got {
		payload := append(reply.Buffer(i), []byte("ack:"+msg)...)
		reply.Set(i, len(payload), from)
		i++
	}
	if sent, err := sbc.SendBatch(reply, n); err != nil || sent != n {
		t.Fatalf("server SendBatch sent %d err %v", sent, err)
	}
	cin := NewBatch(n, 64)
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	acks := 0
	for acks < n {
		k, err := cbc.RecvBatch(cin)
		if err != nil {
			t.Fatalf("client RecvBatch after %d acks: %v", acks, err)
		}
		for j := 0; j < k; j++ {
			if string(cin.Payload(j)[:4]) != "ack:" {
				t.Fatalf("bad ack %q", cin.Payload(j))
			}
			acks++
		}
	}
}

// TestRecvBatchHonorsDeadline: InterruptReads unblocks a blocked
// batched receive — the mechanism serving shutdown relies on to stop
// intake while keeping the socket writable.
func TestRecvBatchHonorsDeadline(t *testing.T) {
	server, _ := udpPair(t)
	bc, err := NewBatchConn(server)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := bc.RecvBatch(NewBatch(4, 64))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := InterruptReads(server); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("RecvBatch returned nil after deadline interrupt")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RecvBatch still blocked after InterruptReads")
	}
}

// TestPacketBatchConn exercises the portable PacketConn adapter:
// single-datagram receive with source capture and addressed sends.
func TestPacketBatchConn(t *testing.T) {
	server, client := udpPair(t)
	pbc := NewPacketBatchConn(server)
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	in := NewBatch(4, 64)
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	k, err := pbc.RecvBatch(in)
	if err != nil || k != 1 {
		t.Fatalf("RecvBatch k=%d err=%v", k, err)
	}
	if string(in.Payload(0)) != "ping" || in.Addr(0).IsZero() {
		t.Fatalf("got %q from %v", in.Payload(0), in.Addr(0))
	}
	out := NewBatch(2, 64)
	payload := append(out.Buffer(0), []byte("pong")...)
	out.Set(0, len(payload), in.Addr(0))
	// Slot 1 has a zero addr: the adapter must skip it, not fail.
	out.Set(1, 0, Sockaddr{})
	if sent, err := pbc.SendBatch(out, 2); err != nil || sent != 1 {
		t.Fatalf("SendBatch sent %d err %v", sent, err)
	}
	buf := make([]byte, 64)
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := client.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("reply %q err %v", buf[:n], err)
	}
}

// TestListenReusePortGroup binds a group (where the platform supports
// it) and proves every member shares one address and each receives
// traffic addressed to it.
func TestListenReusePortGroup(t *testing.T) {
	n := 4
	if !ReusePortSockets {
		n = 1
	}
	conns, err := ListenReusePortGroup("udp", "127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	if len(conns) != n {
		t.Fatalf("got %d sockets, want %d", len(conns), n)
	}
	addr := conns[0].LocalAddr().String()
	for _, c := range conns[1:] {
		if c.LocalAddr().String() != addr {
			t.Fatalf("group member on %s, want %s", c.LocalAddr(), addr)
		}
	}
	// Many distinct client flows: the kernel hashes each onto some
	// member; together the group must see every datagram.
	const flows = 32
	for i := 0; i < flows; i++ {
		c, err := net.Dial("udp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Fprintf(c, "flow-%02d", i); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	seen := map[string]bool{}
	for _, c := range conns {
		c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		bc, err := NewBatchConn(c)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBatch(flows, 64)
		for time.Now().Before(deadline) {
			k, err := bc.RecvBatch(b)
			if err != nil {
				break // this member's queue is drained
			}
			for j := 0; j < k; j++ {
				seen[string(b.Payload(j))] = true
			}
			if len(seen) == flows {
				break
			}
		}
	}
	if len(seen) != flows {
		t.Fatalf("group delivered %d/%d flows", len(seen), flows)
	}
	if !ReusePortSockets {
		if _, err := ListenReusePortGroup("udp", "127.0.0.1:0", 2); err == nil {
			t.Fatal("multi-socket group accepted without SO_REUSEPORT support")
		}
	}
}

// TestSendBatchZeroAllocSteadyState gates the batched send path: once
// the Batch exists, sealing destinations and lengths into it and
// flushing via SendBatch must not allocate. (Linux batched path; the
// portable fallback shares the Batch bookkeeping but ReadFromUDP's
// address allocation is outside our control.)
func TestSendBatchZeroAllocSteadyState(t *testing.T) {
	server, client := udpPair(t)
	sbc, err := NewBatchConn(server)
	if err != nil {
		t.Fatal(err)
	}
	cbc, err := NewBatchConn(client)
	if err != nil {
		t.Fatal(err)
	}
	to, ok := SockaddrFromUDP(server.LocalAddr().(*net.UDPAddr))
	if !ok {
		t.Fatal("bad server addr")
	}
	_ = sbc
	const n = 16
	out := NewBatch(n, 64)
	drain := NewBatch(n, 64)
	payload := []byte("steady-state-datagram")
	send := func() {
		for i := 0; i < n; i++ {
			b := append(out.Buffer(i), payload...)
			out.Set(i, len(b), to)
		}
		if sent, err := cbc.SendBatch(out, n); err != nil || sent != n {
			panic(fmt.Sprintf("sent %d err %v", sent, err))
		}
		got := 0
		server.SetReadDeadline(time.Now().Add(5 * time.Second))
		for got < n {
			k, err := sbc.RecvBatch(drain)
			if err != nil {
				panic(err)
			}
			got += k
		}
	}
	send() // warm the path
	if !BatchSyscalls {
		t.Skip("fallback build: ReadFromUDP allocates per-datagram source addresses")
	}
	allocs := testing.AllocsPerRun(50, send)
	if allocs != 0 {
		t.Fatalf("batched send/recv cycle allocated %.1f times per run (GOOS=%s)", allocs, runtime.GOOS)
	}
}

// TestSendBatchGSO: with UDP segmentation offload on, same-destination
// runs collapse into segmented sends but each receiver still gets
// exactly its own datagrams with original boundaries — including a
// short slot ending a run.
func TestSendBatchGSO(t *testing.T) {
	if !BatchSyscalls {
		t.Skip("GSO rides the batched linux path")
	}
	sender, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	sbc, err := NewBatchConn(sender)
	if err != nil {
		t.Fatal(err)
	}
	const seg = 32
	g, ok := DatagramConn(sbc).(interface{ EnableGSO(int) error })
	if !ok {
		t.Fatal("BatchConn lost its EnableGSO method")
	}
	if err := g.EnableGSO(seg); err != nil {
		t.Skipf("kernel without UDP_SEGMENT: %v", err)
	}

	recv := func() (*net.UDPConn, Sockaddr) {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		a, ok := SockaddrFromUDP(c.LocalAddr().(*net.UDPAddr))
		if !ok {
			t.Fatal("bad receiver addr")
		}
		return c, a
	}
	ra, aa := recv()
	rb, ab := recv()

	// Slots: 5 full-size to A, one short to A (ends the run), 3
	// full-size to B, 1 full-size to A again.
	type slot struct {
		to  Sockaddr
		len int
	}
	slots := []slot{{aa, seg}, {aa, seg}, {aa, seg}, {aa, seg}, {aa, seg}, {aa, 20}, {ab, seg}, {ab, seg}, {ab, seg}, {aa, seg}}
	b := NewBatch(len(slots), seg)
	for i, sl := range slots {
		p := b.Buffer(i)
		for j := 0; j < sl.len; j++ {
			p = append(p, byte(i))
		}
		b.Set(i, len(p), sl.to)
	}
	sent, err := sbc.SendBatch(b, len(slots))
	if err != nil || sent != len(slots) {
		t.Fatalf("SendBatch sent %d err %v", sent, err)
	}

	check := func(c *net.UDPConn, want []slot, wantIdx []int) {
		t.Helper()
		buf := make([]byte, seg+1)
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		for k, idx := range wantIdx {
			n, err := c.Read(buf)
			if err != nil {
				t.Fatalf("datagram %d: %v", k, err)
			}
			if n != want[k].len || buf[0] != byte(idx) {
				t.Fatalf("datagram %d: len=%d first=%d, want len=%d first=%d", k, n, buf[0], want[k].len, idx)
			}
		}
	}
	check(ra, []slot{{aa, seg}, {aa, seg}, {aa, seg}, {aa, seg}, {aa, seg}, {aa, 20}, {aa, seg}}, []int{0, 1, 2, 3, 4, 5, 9})
	check(rb, []slot{{ab, seg}, {ab, seg}, {ab, seg}}, []int{6, 7, 8})

	// Oversize slot: explicit error, nothing sent.
	b2 := NewBatch(1, seg*2)
	p := b2.Buffer(0)
	for j := 0; j < seg+1; j++ {
		p = append(p, 0xee)
	}
	b2.Set(0, len(p), aa)
	if sent, err := sbc.SendBatch(b2, 1); err == nil || sent != 0 {
		t.Fatalf("oversize GSO slot: sent=%d err=%v, want error", sent, err)
	}
}
