// Package transport is the live implementation of enclave.Platform: a
// Triad node running as an ordinary process, speaking encrypted UDP.
//
// Without SGX hardware in this environment (the reproduction gap the
// paper's artifact fills with real enclaves), the live platform makes
// the closest Gramine-style substitution: the guest TSC is the Go
// runtime's monotonic clock scaled to tick units, AEXs are delivered by
// an optional synthetic interrupt generator or injected externally, and
// INC measurements return the modelled iteration count for the elapsed
// window. The protocol logic above this layer is identical to what the
// simulation runs, so live deployments exercise the same code paths.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"triadtime/internal/enclave"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
)

// Config parameterizes a live platform.
type Config struct {
	// Conn is the node's packet endpoint. The platform takes ownership
	// and closes it on Close.
	Conn net.PacketConn
	// Directory maps wire identities to UDP addresses for every remote
	// this node talks to (peers and the Time Authority).
	Directory map[simnet.Addr]string
	// TSCHz is the virtual guest-TSC rate mapped onto the monotonic
	// clock. Default: the paper machine's 2899.999 MHz.
	TSCHz float64
	// AEXPeriod, if positive, delivers synthetic AEXs at this period —
	// a stand-in for OS interrupts when demonstrating the protocol
	// live. Zero disables the generator (use InjectAEX).
	AEXPeriod time.Duration
}

// Platform is the live enclave.Platform. All handler callbacks and all
// functions passed to Do run on one internal goroutine, satisfying the
// Platform serialization contract.
type Platform struct {
	cfg   Config
	tscHz float64
	start time.Time

	conn  net.PacketConn
	dirMu sync.RWMutex
	dir   map[simnet.Addr]*net.UDPAddr

	work     chan func()
	done     chan struct{}
	readDone chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once

	// Accessed only on the loop goroutine.
	aexHandler func()
	msgHandler func(from simnet.Addr, payload []byte)
	aexEpoch   uint64
	aexCount   int
	core       simtime.Core
	incIndex   int
}

var _ enclave.Platform = (*Platform)(nil)

// New creates and starts a live platform.
func New(cfg Config) (*Platform, error) {
	if cfg.Conn == nil {
		return nil, errors.New("transport: Conn is required")
	}
	tscHz := cfg.TSCHz
	if tscHz == 0 {
		tscHz = simtime.NominalTSCHz
	}
	dir := make(map[simnet.Addr]*net.UDPAddr, len(cfg.Directory))
	for id, addr := range cfg.Directory {
		udp, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("transport: resolve %d=%q: %w", id, addr, err)
		}
		dir[id] = udp
	}
	p := &Platform{
		cfg:      cfg,
		tscHz:    tscHz,
		start:    time.Now(),
		conn:     cfg.Conn,
		dir:      dir,
		work:     make(chan func(), 256),
		done:     make(chan struct{}),
		readDone: make(chan struct{}),
		loopDone: make(chan struct{}),
		core:     simtime.PaperCore(),
	}
	go p.loop()
	go p.readLoop()
	if cfg.AEXPeriod > 0 {
		go p.aexLoop(cfg.AEXPeriod)
	}
	return p, nil
}

// loop serializes every callback the node sees.
func (p *Platform) loop() {
	defer close(p.loopDone)
	for {
		select {
		case fn := <-p.work:
			fn()
		case <-p.done:
			// Shutdown: run what is already enqueued — datagrams the
			// read loop accepted before the socket closed — so Close
			// never abandons an admitted callback mid-queue, then exit.
			for {
				select {
				case fn := <-p.work:
					fn()
				default:
					return
				}
			}
		}
	}
}

// payloadPool recycles received-datagram buffers between the read and
// dispatch goroutines. Handlers must not retain the payload past the
// callback (the engine copies what it needs while opening the seal),
// matching the simulated network's delivery-buffer contract.
var payloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

func (p *Platform) readLoop() {
	defer close(p.readDone)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := p.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		bp := payloadPool.Get().(*[]byte)
		payload := append((*bp)[:0], buf[:n]...)
		*bp = payload
		sender := p.identify(from)
		p.post(func() {
			if p.msgHandler != nil {
				p.msgHandler(sender, payload)
			}
			payloadPool.Put(bp)
		})
	}
}

// identify maps a UDP source to a directory identity (0 if unknown —
// the wire layer's authenticated sender ID is what actually matters).
func (p *Platform) identify(from net.Addr) simnet.Addr {
	p.dirMu.RLock()
	defer p.dirMu.RUnlock()
	for id, addr := range p.dir {
		if addr.String() == from.String() {
			return id
		}
	}
	return 0
}

func (p *Platform) aexLoop(period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.InjectAEX()
		case <-p.done:
			return
		}
	}
}

// post enqueues fn onto the loop unless the platform is closed.
func (p *Platform) post(fn func()) {
	select {
	case p.work <- fn:
	case <-p.done:
	}
}

// Do runs fn on the platform's dispatch goroutine and waits for it —
// the safe way for application code to call into the node (e.g.
// TrustedNow). Returns false if the platform is closed.
func (p *Platform) Do(fn func()) bool {
	done := make(chan struct{})
	select {
	case p.work <- func() { fn(); close(done) }:
	case <-p.done:
		return false
	}
	select {
	case <-done:
		return true
	case <-p.done:
		return false
	}
}

// ReadTSC maps the monotonic clock to guest ticks.
func (p *Platform) ReadTSC() uint64 {
	return uint64(time.Since(p.start).Seconds() * p.tscHz)
}

// BootTSCHz reports the configured guest tick rate.
func (p *Platform) BootTSCHz() float64 { return p.tscHz }

// Send transmits a datagram to a directory identity. Unknown targets
// are dropped silently (UDP semantics).
func (p *Platform) Send(to simnet.Addr, payload []byte) {
	p.dirMu.RLock()
	addr := p.dir[to]
	p.dirMu.RUnlock()
	if addr == nil {
		return
	}
	// Write errors are indistinguishable from loss for the protocol.
	_, _ = p.conn.WriteTo(payload, addr)
}

// AfterTicks schedules fn after the guest TSC advances by ticks.
func (p *Platform) AfterTicks(ticks uint64, fn func()) enclave.CancelFunc {
	d := time.Duration(float64(ticks) / p.tscHz * float64(time.Second))
	t := time.AfterFunc(d, func() { p.post(fn) })
	return func() { t.Stop() }
}

// SetAEXHandler registers the AEX-Notify callback.
func (p *Platform) SetAEXHandler(fn func()) {
	p.post(func() { p.aexHandler = fn })
}

// SetMessageHandler registers the datagram callback.
func (p *Platform) SetMessageHandler(fn func(from simnet.Addr, payload []byte)) {
	p.post(func() { p.msgHandler = fn })
}

// StartINCCheck models one monitoring-loop measurement: it completes
// after the wall time the tick window spans, reporting the modelled
// iteration count, or interrupted if an AEX landed inside the window.
func (p *Platform) StartINCCheck(ticks uint64, done func(count float64, interrupted bool)) {
	p.post(func() {
		epoch := p.aexEpoch
		d := time.Duration(float64(ticks) / p.tscHz * float64(time.Second))
		time.AfterFunc(d, func() {
			p.post(func() {
				if p.aexEpoch != epoch {
					done(0, true)
					return
				}
				count := enclave.IdealINC(p.core, float64(ticks), p.tscHz)
				if p.incIndex == 0 {
					count += enclave.PaperINCModel().WarmupOffset
				}
				p.incIndex++
				done(count, false)
			})
		})
	})
}

// StartMemCheck models one memory-access monitoring measurement,
// mirroring StartINCCheck with the frequency-independent counter.
func (p *Platform) StartMemCheck(ticks uint64, done func(count float64, interrupted bool)) {
	p.post(func() {
		epoch := p.aexEpoch
		d := time.Duration(float64(ticks) / p.tscHz * float64(time.Second))
		time.AfterFunc(d, func() {
			p.post(func() {
				if p.aexEpoch != epoch {
					done(0, true)
					return
				}
				done(enclave.PaperMemModel().IdealMem(float64(ticks), p.tscHz), false)
			})
		})
	})
}

// InjectAEX delivers one AEX to the node (severing time continuity),
// as the synthetic generator or an external test harness would.
func (p *Platform) InjectAEX() {
	p.post(func() {
		p.aexEpoch++
		p.aexCount++
		if p.aexHandler != nil {
			p.aexHandler()
		}
	})
}

// AEXCount reports delivered AEXs.
func (p *Platform) AEXCount() int {
	n := 0
	if !p.Do(func() { n = p.aexCount }) {
		return 0
	}
	return n
}

// LocalAddr reports the bound UDP address.
func (p *Platform) LocalAddr() net.Addr { return p.conn.LocalAddr() }

// Close shuts the platform down gracefully and returns only when no
// handler is running or pending: the socket closes first (unblocking
// the read loop), then every datagram the read loop had already
// accepted is dispatched, then the dispatch goroutine exits. Callbacks
// posted after Close are dropped. Safe to call multiple times; later
// calls return nil without waiting. Must not be called from a handler
// (it would wait for its own return).
func (p *Platform) Close() error {
	var err error
	p.stopOnce.Do(func() {
		err = p.conn.Close()
		// The read loop exits on the closed socket — after this, every
		// accepted datagram is in the work queue.
		<-p.readDone
		// Tell the dispatch loop to drain that queue and stop.
		close(p.done)
		<-p.loopDone
	})
	return err
}
