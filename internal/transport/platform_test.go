package transport

import (
	"math"
	"net"
	"testing"
	"time"

	"triadtime/internal/authority"
	"triadtime/internal/core"
	enclavepkg "triadtime/internal/enclave"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
)

func testKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(i + 17)
	}
	return key
}

func listen(t *testing.T) net.PacketConn {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return conn
}

func TestReadTSCAdvancesMonotonically(t *testing.T) {
	p, err := New(Config{Conn: listen(t), TSCHz: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a := p.ReadTSC()
	time.Sleep(20 * time.Millisecond)
	b := p.ReadTSC()
	gained := float64(b - a)
	if gained < 15e6 || gained > 200e6 {
		t.Errorf("TSC gained %v over ~20ms at 1GHz", gained)
	}
	if p.BootTSCHz() != 1e9 {
		t.Errorf("BootTSCHz = %v", p.BootTSCHz())
	}
}

func TestDefaultTSCHz(t *testing.T) {
	p, err := New(Config{Conn: listen(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.BootTSCHz() != simtime.NominalTSCHz {
		t.Errorf("default TSCHz = %v", p.BootTSCHz())
	}
}

func TestAfterTicksAndCancel(t *testing.T) {
	p, err := New(Config{Conn: listen(t), TSCHz: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	fired := make(chan struct{})
	p.AfterTicks(10e6, func() { close(fired) }) // 10ms
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	cancelled := false
	cancel := p.AfterTicks(5e6, func() { cancelled = true })
	cancel()
	time.Sleep(30 * time.Millisecond)
	if cancelled {
		t.Error("cancelled timer fired")
	}
}

func TestInjectAEXAndCount(t *testing.T) {
	p, err := New(Config{Conn: listen(t), TSCHz: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	hits := make(chan struct{}, 10)
	p.SetAEXHandler(func() { hits <- struct{}{} })
	p.InjectAEX()
	p.InjectAEX()
	for i := 0; i < 2; i++ {
		select {
		case <-hits:
		case <-time.After(2 * time.Second):
			t.Fatal("AEX handler not invoked")
		}
	}
	if got := p.AEXCount(); got != 2 {
		t.Errorf("AEXCount = %d", got)
	}
}

func TestSyntheticAEXGenerator(t *testing.T) {
	p, err := New(Config{Conn: listen(t), TSCHz: 1e9, AEXPeriod: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	deadline := time.After(3 * time.Second)
	for p.AEXCount() < 3 {
		select {
		case <-deadline:
			t.Fatal("generator produced too few AEXs")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestINCCheckLive(t *testing.T) {
	p, err := New(Config{Conn: listen(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	type result struct {
		count       float64
		interrupted bool
	}
	results := make(chan result, 1)
	// 15e6 ticks at 2.9GHz ≈ 5.2ms of wall time.
	p.StartINCCheck(15e6, func(c float64, i bool) { results <- result{c, i} })
	select {
	case r := <-results:
		if r.interrupted {
			t.Fatal("unexpected interruption")
		}
		// First measurement carries the warm-up offset.
		want := simtime.PaperINCPer15MTicks + enclavepkg.PaperINCModel().WarmupOffset
		if math.Abs(r.count-want) > 1 {
			t.Errorf("count = %v, want %v", r.count, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("INC check never completed")
	}
	// Second measurement: steady state.
	p.StartINCCheck(15e6, func(c float64, i bool) { results <- result{c, i} })
	r := <-results
	if math.Abs(r.count-simtime.PaperINCPer15MTicks) > 1 {
		t.Errorf("steady count = %v", r.count)
	}
}

func TestINCCheckInterruptedByAEX(t *testing.T) {
	p, err := New(Config{Conn: listen(t), TSCHz: 1e6}) // 15e6 ticks = 15s, plenty of room
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	results := make(chan bool, 1)
	p.StartINCCheck(200_000, func(_ float64, interrupted bool) { results <- interrupted }) // 200ms
	time.Sleep(20 * time.Millisecond)
	p.InjectAEX()
	select {
	case interrupted := <-results:
		if !interrupted {
			t.Error("AEX inside the window should interrupt the measurement")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("INC check never completed")
	}
}

func TestDoSerializesAndSurvivesClose(t *testing.T) {
	p, err := New(Config{Conn: listen(t)})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if !p.Do(func() { ran = true }) || !ran {
		t.Error("Do did not run")
	}
	if err := p.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if p.Do(func() {}) {
		t.Error("Do after Close should report false")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing Conn accepted")
	}
	if _, err := New(Config{Conn: listen(t), Directory: map[simnet.Addr]string{1: "not-an-addr:xx"}}); err == nil {
		t.Error("bad directory address accepted")
	}
}

// TestLiveClusterEndToEnd runs a real Time Authority and three real
// Triad nodes over localhost UDP, with synthetic AEXs, and checks that
// all nodes calibrate and serve monotonic trusted timestamps that track
// wall time.
func TestLiveClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test is wall-clock bound")
	}
	// Time Authority.
	taConn := listen(t)
	taSrv, err := authority.NewServer(taConn, testKey(), 100)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = taSrv.Serve() }()
	defer taSrv.Close()

	// Three nodes. Bind sockets first so the directory is complete.
	conns := []net.PacketConn{listen(t), listen(t), listen(t)}
	dir := map[simnet.Addr]string{100: taConn.LocalAddr().String()}
	for i, c := range conns {
		dir[simnet.Addr(i+1)] = c.LocalAddr().String()
	}

	var platforms []*Platform
	var nodes []*core.Node
	for i, c := range conns {
		p, err := New(Config{
			Conn:      c,
			Directory: dir,
			AEXPeriod: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		var peers []simnet.Addr
		for j := range conns {
			if j != i {
				peers = append(peers, simnet.Addr(j+1))
			}
		}
		var node *core.Node
		ok := p.Do(func() {
			node, err = core.NewNode(p, core.Config{
				Key:       testKey(),
				Addr:      simnet.Addr(i + 1),
				Peers:     peers,
				Authority: 100,
				// Short calibration sleeps keep the test fast while
				// preserving the two-point regression.
				CalibSleeps:    []time.Duration{0, 200 * time.Millisecond},
				DisableMonitor: true, // wall-clock INC windows are noisy under CI load
			})
		})
		if !ok || err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
		platforms = append(platforms, p)
		nodes = append(nodes, node)
		p.Do(node.Start)
	}

	// Wait for calibration.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ready := 0
		for i, n := range nodes {
			platforms[i].Do(func() {
				if n.State() == core.StateOK || n.State() == core.StateTainted {
					if n.FCalib() != 0 {
						ready++
					}
				}
			})
		}
		if ready == len(nodes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("nodes never calibrated over live UDP")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Serve timestamps: monotonic and tracking wall time.
	var last int64
	for round := 0; round < 20; round++ {
		for i, n := range nodes {
			platforms[i].Do(func() {
				ts, err := n.TrustedNow()
				if err != nil {
					return // transiently tainted is fine
				}
				if ts <= last && i == 0 {
					t.Errorf("node1 served %d after %d", ts, last)
				}
				if i == 0 {
					last = ts
				}
				wall := time.Now().UnixNano()
				if diff := time.Duration(ts - wall); diff < -2*time.Second || diff > 2*time.Second {
					t.Errorf("node%d trusted time off wall clock by %v", i+1, diff)
				}
			})
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCloseWaitsForInFlightHandler is the graceful-shutdown contract:
// Close must not return while a message handler is still running, and
// datagrams the read loop accepted before Close are dispatched, not
// abandoned. The handler writes handled without locks — if Close
// returned early the race detector (make test-race) and the plain
// assertion would both catch it.
func TestCloseWaitsForInFlightHandler(t *testing.T) {
	conn := listen(t)
	p, err := New(Config{Conn: conn})
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	handled := 0
	p.SetMessageHandler(func(_ simnet.Addr, _ []byte) {
		if handled == 0 {
			close(started)
			<-release // hold the dispatch loop mid-handler
		}
		handled++
	})

	sender := listen(t)
	defer sender.Close()
	if _, err := sender.WriteTo([]byte("one"), conn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first datagram never reached the handler")
	}
	// With the loop held, a second datagram lands in the work queue.
	if _, err := sender.WriteTo([]byte("two"), conn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(p.work) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second datagram never enqueued")
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan error)
	go func() { closed <- p.Close() }()
	select {
	case <-closed:
		t.Fatal("Close returned while a handler was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the handler finished")
	}
	// Happens-before: Close returned, so both handler runs are visible.
	if handled != 2 {
		t.Fatalf("handled %d datagrams, want 2 (queued work must drain on Close)", handled)
	}
	// Idempotent, and callbacks after Close are dropped, not queued.
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	p.InjectAEX()
	if got := p.AEXCount(); got != 0 {
		t.Fatalf("AEXCount after Close = %d, want 0", got)
	}
}
