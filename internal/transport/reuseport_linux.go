//go:build linux

package transport

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// soREUSEPORT is SO_REUSEPORT (uniform across Linux architectures);
// the frozen syscall package predates it.
const soREUSEPORT = 0xf

// ReusePortSockets reports whether this platform can bind several
// sockets to one UDP address (kernel receive-side scaling across the
// group).
const ReusePortSockets = true

// ListenReusePortGroup binds n UDP sockets to the same address with
// SO_REUSEPORT: the kernel hashes each client flow (4-tuple) onto one
// member, spreading decode/authenticate work across the sockets'
// receive goroutines while every member sends from the identical
// source address. addr may carry port 0; the port the first bind
// receives is reused for the rest. On failure, already-bound sockets
// are closed.
func ListenReusePortGroup(network, addr string, n int) ([]*net.UDPConn, error) {
	if n <= 0 {
		n = 1
	}
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soREUSEPORT, 1)
		})
		if err != nil {
			return err
		}
		return serr
	}}
	conns := make([]*net.UDPConn, 0, n)
	bindAddr := addr
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), network, bindAddr)
		if err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("transport: reuseport bind %d/%d on %q: %w", i+1, n, bindAddr, err)
		}
		uc, ok := pc.(*net.UDPConn)
		if !ok {
			pc.Close()
			closeAll(conns)
			return nil, fmt.Errorf("transport: %q is not a UDP network", network)
		}
		// Burst headroom: batched serving drains hundreds of datagrams
		// per wakeup, so default socket buffers (a few hundred small
		// datagrams) drop under load spikes. Best-effort; the kernel
		// clamps to its rmem/wmem limits.
		_ = uc.SetReadBuffer(1 << 20)
		_ = uc.SetWriteBuffer(1 << 20)
		conns = append(conns, uc)
		if i == 0 {
			// Pin the concrete port the kernel chose for the group.
			bindAddr = uc.LocalAddr().String()
		}
	}
	return conns, nil
}

func closeAll(conns []*net.UDPConn) {
	for _, c := range conns {
		c.Close()
	}
}
