//go:build !linux

package transport

import (
	"fmt"
	"net"
)

// ReusePortSockets reports whether this platform can bind several
// sockets to one UDP address. Callers clamp their socket fan-out to 1
// where it cannot.
const ReusePortSockets = false

// ListenReusePortGroup on platforms without SO_REUSEPORT support binds
// a single ordinary socket; asking for more is an explicit error
// rather than a silently-degraded group.
func ListenReusePortGroup(network, addr string, n int) ([]*net.UDPConn, error) {
	if n > 1 {
		return nil, fmt.Errorf("transport: %d reuseport sockets requested; SO_REUSEPORT groups are Linux-only", n)
	}
	pc, err := net.ListenPacket(network, addr)
	if err != nil {
		return nil, err
	}
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("transport: %q is not a UDP network", network)
	}
	return []*net.UDPConn{uc}, nil
}
