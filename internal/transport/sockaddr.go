package transport

import (
	"fmt"
	"net"
)

// Sockaddr is a fixed-size, value-type UDP address. The batched serving
// path stores one per pending request — inline in the shard ring, not
// behind a net.Addr interface — so admitting a request and addressing
// its response never allocates. The zero value is "no address"
// (IsZero); batch sends skip such slots on unconnected sockets and use
// the connected peer on connected ones.
type Sockaddr struct {
	// IP holds the address: the first 4 bytes for IPv4, all 16 for
	// IPv6. IPv4-mapped IPv6 sources are stored as plain IPv4.
	IP [16]byte
	// Port is the UDP port in host byte order.
	Port uint16
	// V6 selects the IPv6 interpretation of IP.
	V6 bool
}

// IsZero reports whether a is the zero ("no address") value.
func (a Sockaddr) IsZero() bool { return a == Sockaddr{} }

// String renders the address for logs and errors (allocates; not for
// hot paths).
func (a Sockaddr) String() string {
	if a.V6 {
		return fmt.Sprintf("[%s]:%d", net.IP(a.IP[:]).String(), a.Port)
	}
	return fmt.Sprintf("%d.%d.%d.%d:%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3], a.Port)
}

// SockaddrFromUDP converts a resolved UDP address. Allocation-free; ok
// is false when u is nil or carries an IP of unexpected length.
//
//triad:hotpath
func SockaddrFromUDP(u *net.UDPAddr) (a Sockaddr, ok bool) {
	if u == nil {
		return Sockaddr{}, false
	}
	switch len(u.IP) {
	case net.IPv4len:
		copy(a.IP[:4], u.IP)
	case net.IPv6len:
		if isV4Mapped(u.IP) {
			copy(a.IP[:4], u.IP[12:])
		} else {
			copy(a.IP[:], u.IP)
			a.V6 = true
		}
	default:
		return Sockaddr{}, false
	}
	a.Port = uint16(u.Port)
	return a, true
}

// PutUDP fills a reusable *net.UDPAddr (with its reusable 16-byte IP
// backing slice) from a, so fallback send paths can address packets
// without per-send allocation.
//
//triad:hotpath
func (a Sockaddr) PutUDP(u *net.UDPAddr, ipBuf []byte) {
	n := 4
	if a.V6 {
		n = 16
	}
	ipBuf = ipBuf[:n]
	copy(ipBuf, a.IP[:n])
	u.IP = ipBuf
	u.Port = int(a.Port)
	u.Zone = ""
}

// isV4Mapped reports whether a 16-byte IP is ::ffff:a.b.c.d.
func isV4Mapped(ip net.IP) bool {
	for i := 0; i < 10; i++ {
		if ip[i] != 0 {
			return false
		}
	}
	return ip[10] == 0xff && ip[11] == 0xff
}
