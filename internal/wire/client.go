package wire

import (
	"encoding/binary"
	"fmt"
)

// Client-facing serving messages. The serving subsystem
// (internal/serve) speaks to untrusted clients over its own sealed
// datagram exchange: a TimeRequest asks a node for an attested
// timestamp (optionally binding a document hash for an RFC3161-style
// token) and a TimeResponse answers it — or sheds it with an explicit
// overload status instead of a silent drop. Both are fixed-size, like
// every other Triad datagram, so message kinds are indistinguishable
// by length on the wire.
//
// These messages are deliberately NOT Message values: they are larger
// than the fixed calibration-protocol datagram, travel under a
// separate client pre-shared key, and their kinds are rejected by
// Unmarshal so a client datagram replayed at a protocol endpoint can
// never be mistaken for protocol traffic.

// Client-facing message kinds. Values are part of the wire format; they
// extend the Kind space past the calibration-protocol messages and are
// intentionally outside Unmarshal's accepted range.
const (
	// KindStampRequest asks a serving node for an attested timestamp.
	KindStampRequest Kind = 6
	// KindStampResponse carries the timestamp (or a shed/unavailable
	// status) back to the client.
	KindStampResponse Kind = 7
)

// StampHashSize is the document hash a TimeRequest may bind (SHA-256,
// matching tsa.HashSize).
const StampHashSize = 32

// StampTokenSize is the serialized tsa token carried by a granting
// TimeResponse (hash 32 + nanos 8 + nonce 16 + MAC 32, matching
// tsa.TokenSize; internal/serve asserts the two agree at compile time).
const StampTokenSize = 88

// TimeRequest flags.
const (
	// FlagWantToken asks the node to additionally issue a tsa token
	// binding Hash to the served timestamp.
	FlagWantToken uint8 = 1 << 0
)

// StampStatus is a TimeResponse's disposition.
type StampStatus uint8

// TimeResponse statuses.
const (
	// StatusOK: Nanos carries the trusted timestamp (and Token a tsa
	// token when the request set FlagWantToken).
	StatusOK StampStatus = 1
	// StatusOverloaded: the node shed the request under admission
	// control (queue full or per-client rate exceeded). Explicit, so
	// clients can back off instead of retrying into the overload.
	StatusOverloaded StampStatus = 2
	// StatusUnavailable: the node cannot currently serve trusted time
	// (tainted or calibrating). Clients retry later.
	StatusUnavailable StampStatus = 3
)

// String names the status for logs and tables.
func (s StampStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusOverloaded:
		return "overloaded"
	case StatusUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("StampStatus(%d)", uint8(s))
	}
}

// TimeRequest is a client's request for an attested timestamp.
type TimeRequest struct {
	// ClientID identifies the requesting principal: the serving node's
	// shard dispatch and per-client rate limiting key on it. It is
	// carried inside the sealed payload, so a network observer cannot
	// link datagrams to clients.
	ClientID uint64
	// Seq matches responses to requests; each client chooses its own.
	Seq uint64
	// Flags modifies the request (FlagWantToken).
	Flags uint8
	// Hash is the document hash a token should bind (FlagWantToken).
	Hash [StampHashSize]byte
}

// TimeRequestSize is the fixed encoded size of a TimeRequest:
// kind(1) + clientID(8) + seq(8) + flags(1) + hash(32).
const TimeRequestSize = 1 + 8 + 8 + 1 + StampHashSize

// MarshalInto encodes the request into b, which must be at least
// TimeRequestSize bytes. Allocation-free.
func (r TimeRequest) MarshalInto(b []byte) {
	_ = b[TimeRequestSize-1] // bounds hint
	b[0] = byte(KindStampRequest)
	binary.BigEndian.PutUint64(b[1:], r.ClientID)
	binary.BigEndian.PutUint64(b[9:], r.Seq)
	b[17] = r.Flags
	copy(b[18:], r.Hash[:])
}

// Marshal encodes the request into a fresh buffer.
func (r TimeRequest) Marshal() []byte {
	b := make([]byte, TimeRequestSize)
	r.MarshalInto(b)
	return b
}

// UnmarshalTimeRequest decodes a request produced by Marshal. The
// encoding is exact-size: clients have no business padding datagrams,
// and rejecting slack keeps kinds and lengths in 1:1 correspondence.
func UnmarshalTimeRequest(b []byte) (TimeRequest, error) {
	if len(b) < TimeRequestSize {
		return TimeRequest{}, ErrTruncated
	}
	if len(b) != TimeRequestSize || Kind(b[0]) != KindStampRequest {
		return TimeRequest{}, fmt.Errorf("%w: %d (len %d)", ErrBadKind, b[0], len(b))
	}
	r := TimeRequest{
		ClientID: binary.BigEndian.Uint64(b[1:]),
		Seq:      binary.BigEndian.Uint64(b[9:]),
		Flags:    b[17],
	}
	copy(r.Hash[:], b[18:])
	return r, nil
}

// TimeResponse answers (or sheds) a TimeRequest.
type TimeResponse struct {
	// ClientID and Seq echo the request's, so a client multiplexing
	// identities over one socket can route the answer.
	ClientID uint64
	Seq      uint64
	// Status is the disposition; Nanos and Token are meaningful only
	// for StatusOK.
	Status StampStatus
	// Nanos is the trusted timestamp (authority timeline).
	Nanos int64
	// Token is the serialized tsa token when the request asked for one
	// (zero otherwise; HasToken distinguishes).
	Token [StampTokenSize]byte
	// HasToken reports whether Token carries an issued token.
	HasToken bool
}

// TimeResponseSize is the fixed encoded size of a TimeResponse:
// kind(1) + clientID(8) + seq(8) + status(1) + hasToken(1) + nanos(8) +
// token(88).
const TimeResponseSize = 1 + 8 + 8 + 1 + 1 + 8 + StampTokenSize

// MarshalInto encodes the response into b, which must be at least
// TimeResponseSize bytes. Allocation-free.
func (r TimeResponse) MarshalInto(b []byte) {
	_ = b[TimeResponseSize-1] // bounds hint
	b[0] = byte(KindStampResponse)
	binary.BigEndian.PutUint64(b[1:], r.ClientID)
	binary.BigEndian.PutUint64(b[9:], r.Seq)
	b[17] = byte(r.Status)
	if r.HasToken {
		b[18] = 1
	} else {
		b[18] = 0
	}
	binary.BigEndian.PutUint64(b[19:], uint64(r.Nanos))
	copy(b[27:], r.Token[:])
}

// Marshal encodes the response into a fresh buffer.
func (r TimeResponse) Marshal() []byte {
	b := make([]byte, TimeResponseSize)
	r.MarshalInto(b)
	return b
}

// UnmarshalTimeResponse decodes a response produced by Marshal.
func UnmarshalTimeResponse(b []byte) (TimeResponse, error) {
	if len(b) < TimeResponseSize {
		return TimeResponse{}, ErrTruncated
	}
	if len(b) != TimeResponseSize || Kind(b[0]) != KindStampResponse {
		return TimeResponse{}, fmt.Errorf("%w: %d (len %d)", ErrBadKind, b[0], len(b))
	}
	status := StampStatus(b[17])
	if status < StatusOK || status > StatusUnavailable {
		return TimeResponse{}, fmt.Errorf("%w: status %d", ErrBadKind, b[17])
	}
	if b[18] > 1 {
		return TimeResponse{}, fmt.Errorf("%w: hasToken %d", ErrBadKind, b[18])
	}
	r := TimeResponse{
		ClientID: binary.BigEndian.Uint64(b[1:]),
		Seq:      binary.BigEndian.Uint64(b[9:]),
		Status:   status,
		HasToken: b[18] == 1,
		Nanos:    int64(binary.BigEndian.Uint64(b[19:])),
	}
	copy(r.Token[:], b[27:])
	return r, nil
}
