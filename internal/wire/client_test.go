package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestTimeRequestRoundtrip(t *testing.T) {
	req := TimeRequest{ClientID: 77, Seq: 1 << 50, Flags: FlagWantToken}
	for i := range req.Hash {
		req.Hash[i] = byte(i * 3)
	}
	got, err := UnmarshalTimeRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, req)
	}
}

func TestTimeResponseRoundtrip(t *testing.T) {
	resp := TimeResponse{
		ClientID: 9,
		Seq:      42,
		Status:   StatusOK,
		Nanos:    1719412345678901234,
		HasToken: true,
	}
	for i := range resp.Token {
		resp.Token[i] = byte(255 - i)
	}
	got, err := UnmarshalTimeResponse(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != resp {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, resp)
	}
}

func TestClientDecodeRejectsMalformed(t *testing.T) {
	req := TimeRequest{ClientID: 1, Seq: 2}.Marshal()
	resp := TimeResponse{Status: StatusOverloaded, Seq: 3}.Marshal()

	cases := []struct {
		name string
		data []byte
		dec  func([]byte) error
		want error
	}{
		{"request truncated", req[:TimeRequestSize-1],
			func(b []byte) error { _, err := UnmarshalTimeRequest(b); return err }, ErrTruncated},
		{"request oversize", append(append([]byte(nil), req...), 0),
			func(b []byte) error { _, err := UnmarshalTimeRequest(b); return err }, ErrBadKind},
		{"request wrong kind", resp[:TimeRequestSize],
			func(b []byte) error { _, err := UnmarshalTimeRequest(b); return err }, ErrBadKind},
		{"response truncated", resp[:TimeResponseSize-1],
			func(b []byte) error { _, err := UnmarshalTimeResponse(b); return err }, ErrTruncated},
		{"response wrong kind", append(append([]byte(nil), req...), make([]byte, TimeResponseSize-TimeRequestSize)...),
			func(b []byte) error { _, err := UnmarshalTimeResponse(b); return err }, ErrBadKind},
	}
	for _, tc := range cases {
		if err := tc.dec(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	bad := TimeResponse{Status: StatusOK}.Marshal()
	bad[17] = 99 // out-of-range status
	if _, err := UnmarshalTimeResponse(bad); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad status accepted: %v", err)
	}
	bad = TimeResponse{Status: StatusOK}.Marshal()
	bad[18] = 2 // non-boolean hasToken
	if _, err := UnmarshalTimeResponse(bad); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad hasToken accepted: %v", err)
	}
}

// TestProtocolUnmarshalRejectsClientKinds keeps the two datagram
// families apart: a client message replayed at a protocol endpoint
// must not decode as protocol traffic (and vice versa the sizes
// already differ).
func TestProtocolUnmarshalRejectsClientKinds(t *testing.T) {
	req := TimeRequest{ClientID: 5, Seq: 6}.Marshal()
	if _, err := Unmarshal(req[:MarshaledSize]); !errors.Is(err, ErrBadKind) {
		t.Errorf("protocol decoder accepted a StampRequest prefix: %v", err)
	}
}

func TestSealDatagramRoundtrip(t *testing.T) {
	sealer, err := NewSealer(testKey(), 31)
	if err != nil {
		t.Fatal(err)
	}
	opener, err := NewOpener(testKey())
	if err != nil {
		t.Fatal(err)
	}
	req := TimeRequest{ClientID: 31, Seq: 7, Flags: FlagWantToken}
	var plain [TimeRequestSize]byte
	req.MarshalInto(plain[:])
	sealed := sealer.SealDatagramAppend(nil, plain[:])
	if len(sealed) != TimeRequestSize+SealedOverhead {
		t.Fatalf("sealed size %d, want %d", len(sealed), TimeRequestSize+SealedOverhead)
	}

	got, sender, err := opener.OpenDatagramInto(nil, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if sender != 31 {
		t.Fatalf("sender %d, want 31", sender)
	}
	if !bytes.Equal(got, plain[:]) {
		t.Fatal("plaintext mangled")
	}
	req2, err := UnmarshalTimeRequest(got)
	if err != nil || req2 != req {
		t.Fatalf("decoded %+v (%v), want %+v", req2, err, req)
	}

	// Replay of the same sealed datagram must be rejected.
	if _, _, err := opener.OpenDatagramInto(nil, sealed); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay accepted: %v", err)
	}
}

// TestSealDatagramAppendZeroAlloc holds the serving hot path to the
// same standard as the protocol dispatch: sealing and opening a client
// datagram into pre-sized scratch performs no heap allocation.
func TestSealDatagramAppendZeroAlloc(t *testing.T) {
	sealer, err := NewSealer(testKey(), 8)
	if err != nil {
		t.Fatal(err)
	}
	opener, err := NewOpener(testKey())
	if err != nil {
		t.Fatal(err)
	}
	var plain [TimeResponseSize]byte
	TimeResponse{Status: StatusOK, Nanos: 1}.MarshalInto(plain[:])
	sealed := make([]byte, 0, TimeResponseSize+SealedOverhead)
	scratch := make([]byte, 0, TimeResponseSize)
	// Warm the replay window allocation for the sender.
	sealed = sealer.SealDatagramAppend(sealed[:0], plain[:])
	if _, _, err := opener.OpenDatagramInto(scratch, sealed); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		sealed = sealer.SealDatagramAppend(sealed[:0], plain[:])
		if _, _, err := opener.OpenDatagramInto(scratch, sealed); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("seal+open datagram allocated %.1f times per op", allocs)
	}
}
