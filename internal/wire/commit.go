package wire

import (
	"encoding/binary"
	"fmt"
)

// Commitment serving messages. The commit subsystem (internal/commit,
// served by internal/serve) lets clients seal data until a trusted
// time T: a Lock mints a time-locked commitment token, an Unlock
// presents it back once trusted time has passed T, and a Status query
// inspects it without consuming it. Each operation is one sealed
// request/response exchange on the client channel.
//
// Like the stamp messages (kinds 6/7), these are NOT protocol Message
// values: they travel under the client pre-shared key, their kinds are
// rejected by Unmarshal, and every commit datagram of a given
// direction has one exact size, so operations are indistinguishable by
// length on the wire (request kinds share CommitRequestSize; response
// kinds share CommitResponseSize).
const (
	// KindCommitLock asks the node to mint a commitment token sealed
	// until the requested trusted time.
	KindCommitLock Kind = 8
	// KindCommitUnlock presents a token for unlocking once trusted time
	// has reached its unlock time.
	KindCommitUnlock Kind = 9
	// KindCommitStatus inspects a token (unlockable yet? fenced?)
	// without attempting the unlock.
	KindCommitStatus Kind = 10
)

// CommitTokenSize is the serialized commitment token carried by commit
// datagrams (hash 32 + unlock 8 + issued 8 + epoch 8 + flags 1 +
// nonce 16 + MAC 32, matching commit.TokenSize; internal/serve asserts
// the two agree at compile time).
const CommitTokenSize = 105

// CommitRequest flags.
const (
	// FlagLease marks the lock as a lease-style exclusive grant: the
	// minted token is fenced to the anchor epoch it was issued in, so a
	// node restart invalidates it (T-Lease-style epoch fencing). Plain
	// commitments stay unlockable across restarts.
	FlagLease uint8 = 1 << 0
)

// CommitVerdict is a CommitResponse's disposition.
type CommitVerdict uint8

// CommitResponse verdicts.
const (
	// CommitOK: the operation succeeded — a Lock minted Token, an
	// Unlock was granted, a Status found the token unlockable now.
	CommitOK CommitVerdict = 1
	// CommitSealed: the token is authentic but trusted time has not
	// reached its unlock time; UnlockNanos says when it will.
	CommitSealed CommitVerdict = 2
	// CommitFenced: the token's epoch is fenced — it was minted in an
	// earlier anchor epoch (node restarted since; lease-mode tokens
	// only) or in a later one (a rolled-back anchor was detected and
	// re-fenced). The token will never unlock.
	CommitFenced CommitVerdict = 3
	// CommitBadToken: the token failed authentication or the request
	// was malformed (e.g. a lock time not in the future).
	CommitBadToken CommitVerdict = 4
	// CommitUnavailable: the node cannot decide — the trusted clock is
	// unavailable, still calibrating, or in Degraded holdover (which
	// serves timestamps but never vouches for an unlock).
	CommitUnavailable CommitVerdict = 5
	// CommitOverloaded: the request was shed by admission control.
	CommitOverloaded CommitVerdict = 6
)

// String names the verdict for logs and tables.
func (v CommitVerdict) String() string {
	switch v {
	case CommitOK:
		return "ok"
	case CommitSealed:
		return "sealed"
	case CommitFenced:
		return "fenced"
	case CommitBadToken:
		return "bad-token"
	case CommitUnavailable:
		return "unavailable"
	case CommitOverloaded:
		return "overloaded"
	default:
		return fmt.Sprintf("CommitVerdict(%d)", uint8(v))
	}
}

// CommitRequest is one commit operation: the Kind selects lock,
// unlock, or status; Hash/UnlockNanos/Flags parameterize a lock and
// Token carries the presented token for unlock/status.
type CommitRequest struct {
	// Kind is KindCommitLock, KindCommitUnlock or KindCommitStatus.
	Kind Kind
	// ClientID and Seq play the same roles as in TimeRequest: shard
	// dispatch / rate-limit key and response matching.
	ClientID uint64
	Seq      uint64
	// Flags modifies a lock (FlagLease).
	Flags uint8
	// Hash is the commitment hash a lock seals (SHA-256 of the sealed
	// data; the node never sees the data itself).
	Hash [StampHashSize]byte
	// UnlockNanos is the trusted time the lock seals until.
	UnlockNanos int64
	// Token is the serialized commitment token an unlock or status
	// request presents.
	Token [CommitTokenSize]byte
}

// CommitRequestSize is the fixed encoded size of every commit request:
// kind(1) + clientID(8) + seq(8) + flags(1) + hash(32) + unlock(8) +
// token(105).
const CommitRequestSize = 1 + 8 + 8 + 1 + StampHashSize + 8 + CommitTokenSize

// MarshalInto encodes the request into b, which must be at least
// CommitRequestSize bytes. Allocation-free.
func (r CommitRequest) MarshalInto(b []byte) {
	_ = b[CommitRequestSize-1] // bounds hint
	b[0] = byte(r.Kind)
	binary.BigEndian.PutUint64(b[1:], r.ClientID)
	binary.BigEndian.PutUint64(b[9:], r.Seq)
	b[17] = r.Flags
	copy(b[18:], r.Hash[:])
	binary.BigEndian.PutUint64(b[18+StampHashSize:], uint64(r.UnlockNanos))
	copy(b[26+StampHashSize:], r.Token[:])
}

// Marshal encodes the request into a fresh buffer.
func (r CommitRequest) Marshal() []byte {
	b := make([]byte, CommitRequestSize)
	r.MarshalInto(b)
	return b
}

// UnmarshalCommitRequest decodes a request produced by Marshal. Like
// the stamp messages, the encoding is exact-size so kinds and lengths
// stay in 1:1 correspondence.
func UnmarshalCommitRequest(b []byte) (CommitRequest, error) {
	if len(b) < CommitRequestSize {
		return CommitRequest{}, ErrTruncated
	}
	k := Kind(b[0])
	if len(b) != CommitRequestSize || k < KindCommitLock || k > KindCommitStatus {
		return CommitRequest{}, fmt.Errorf("%w: %d (len %d)", ErrBadKind, b[0], len(b))
	}
	r := CommitRequest{
		Kind:     k,
		ClientID: binary.BigEndian.Uint64(b[1:]),
		Seq:      binary.BigEndian.Uint64(b[9:]),
		Flags:    b[17],
	}
	copy(r.Hash[:], b[18:])
	r.UnlockNanos = int64(binary.BigEndian.Uint64(b[18+StampHashSize:]))
	copy(r.Token[:], b[26+StampHashSize:])
	return r, nil
}

// CommitResponse answers (or sheds) a CommitRequest. The Kind echoes
// the request's, so one client socket can multiplex all three
// operations.
type CommitResponse struct {
	Kind     Kind
	ClientID uint64
	Seq      uint64
	// Verdict is the disposition; the remaining fields are meaningful
	// as the verdict admits (a CommitOK lock carries Token; CommitSealed
	// carries UnlockNanos; every decided response carries Nanos and
	// Epoch).
	Verdict CommitVerdict
	// Nanos is trusted time at the decision (0 when undecidable).
	Nanos int64
	// UnlockNanos echoes the token's unlock time.
	UnlockNanos int64
	// Epoch is the node's current anchor epoch — the fencing generation
	// a lease-mode token must match.
	Epoch uint64
	// Token is the minted commitment token (CommitOK locks only).
	Token [CommitTokenSize]byte
}

// CommitResponseSize is the fixed encoded size of every commit
// response: kind(1) + clientID(8) + seq(8) + verdict(1) + nanos(8) +
// unlock(8) + epoch(8) + token(105).
const CommitResponseSize = 1 + 8 + 8 + 1 + 8 + 8 + 8 + CommitTokenSize

// MarshalInto encodes the response into b, which must be at least
// CommitResponseSize bytes. Allocation-free.
func (r CommitResponse) MarshalInto(b []byte) {
	_ = b[CommitResponseSize-1] // bounds hint
	b[0] = byte(r.Kind)
	binary.BigEndian.PutUint64(b[1:], r.ClientID)
	binary.BigEndian.PutUint64(b[9:], r.Seq)
	b[17] = byte(r.Verdict)
	binary.BigEndian.PutUint64(b[18:], uint64(r.Nanos))
	binary.BigEndian.PutUint64(b[26:], uint64(r.UnlockNanos))
	binary.BigEndian.PutUint64(b[34:], r.Epoch)
	copy(b[42:], r.Token[:])
}

// Marshal encodes the response into a fresh buffer.
func (r CommitResponse) Marshal() []byte {
	b := make([]byte, CommitResponseSize)
	r.MarshalInto(b)
	return b
}

// UnmarshalCommitResponse decodes a response produced by Marshal.
func UnmarshalCommitResponse(b []byte) (CommitResponse, error) {
	if len(b) < CommitResponseSize {
		return CommitResponse{}, ErrTruncated
	}
	k := Kind(b[0])
	if len(b) != CommitResponseSize || k < KindCommitLock || k > KindCommitStatus {
		return CommitResponse{}, fmt.Errorf("%w: %d (len %d)", ErrBadKind, b[0], len(b))
	}
	v := CommitVerdict(b[17])
	if v < CommitOK || v > CommitOverloaded {
		return CommitResponse{}, fmt.Errorf("%w: verdict %d", ErrBadKind, b[17])
	}
	r := CommitResponse{
		Kind:        k,
		ClientID:    binary.BigEndian.Uint64(b[1:]),
		Seq:         binary.BigEndian.Uint64(b[9:]),
		Verdict:     v,
		Nanos:       int64(binary.BigEndian.Uint64(b[18:])),
		UnlockNanos: int64(binary.BigEndian.Uint64(b[26:])),
		Epoch:       binary.BigEndian.Uint64(b[34:]),
	}
	copy(r.Token[:], b[42:])
	return r, nil
}
