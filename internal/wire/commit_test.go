package wire

import (
	"errors"
	"testing"
)

func TestCommitRequestRoundtrip(t *testing.T) {
	for _, k := range []Kind{KindCommitLock, KindCommitUnlock, KindCommitStatus} {
		req := CommitRequest{
			Kind:        k,
			ClientID:    1234,
			Seq:         1 << 40,
			Flags:       FlagLease,
			UnlockNanos: 1719412345678901234,
		}
		for i := range req.Hash {
			req.Hash[i] = byte(i * 5)
		}
		for i := range req.Token {
			req.Token[i] = byte(200 - i)
		}
		got, err := UnmarshalCommitRequest(req.Marshal())
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got != req {
			t.Fatalf("%v roundtrip mismatch: %+v vs %+v", k, got, req)
		}
	}
}

func TestCommitResponseRoundtrip(t *testing.T) {
	resp := CommitResponse{
		Kind:        KindCommitUnlock,
		ClientID:    9,
		Seq:         42,
		Verdict:     CommitSealed,
		Nanos:       1719412345678901234,
		UnlockNanos: 1719412399999999999,
		Epoch:       7,
	}
	for i := range resp.Token {
		resp.Token[i] = byte(i * 7)
	}
	got, err := UnmarshalCommitResponse(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != resp {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, resp)
	}
}

func TestCommitDecodeRejectsMalformed(t *testing.T) {
	req := CommitRequest{Kind: KindCommitLock, ClientID: 1, Seq: 2}.Marshal()
	resp := CommitResponse{Kind: KindCommitStatus, Verdict: CommitOK, Seq: 3}.Marshal()

	cases := []struct {
		name string
		data []byte
		dec  func([]byte) error
		want error
	}{
		{"request truncated", req[:CommitRequestSize-1],
			func(b []byte) error { _, err := UnmarshalCommitRequest(b); return err }, ErrTruncated},
		{"request oversize", append(append([]byte(nil), req...), 0),
			func(b []byte) error { _, err := UnmarshalCommitRequest(b); return err }, ErrBadKind},
		{"request wrong kind", append([]byte{byte(KindStampRequest)}, req[1:]...),
			func(b []byte) error { _, err := UnmarshalCommitRequest(b); return err }, ErrBadKind},
		{"response truncated", resp[:CommitResponseSize-1],
			func(b []byte) error { _, err := UnmarshalCommitResponse(b); return err }, ErrTruncated},
		{"response oversize", append(append([]byte(nil), resp...), 0),
			func(b []byte) error { _, err := UnmarshalCommitResponse(b); return err }, ErrBadKind},
		{"response wrong kind", append([]byte{byte(KindTimeResponse)}, resp[1:]...),
			func(b []byte) error { _, err := UnmarshalCommitResponse(b); return err }, ErrBadKind},
	}
	for _, tc := range cases {
		if err := tc.dec(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	bad := CommitResponse{Kind: KindCommitLock, Verdict: CommitOK}.Marshal()
	bad[17] = 99 // out-of-range verdict
	if _, err := UnmarshalCommitResponse(bad); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad verdict accepted: %v", err)
	}
	bad[17] = 0 // zero verdict
	if _, err := UnmarshalCommitResponse(bad); !errors.Is(err, ErrBadKind) {
		t.Errorf("zero verdict accepted: %v", err)
	}
}

// TestProtocolUnmarshalRejectsCommitKinds mirrors the stamp-kind
// separation test: a commit datagram replayed at a protocol endpoint
// must not decode as protocol traffic.
func TestProtocolUnmarshalRejectsCommitKinds(t *testing.T) {
	for _, k := range []Kind{KindCommitLock, KindCommitUnlock, KindCommitStatus} {
		req := CommitRequest{Kind: k, ClientID: 5, Seq: 6}.Marshal()
		if _, err := Unmarshal(req[:MarshaledSize]); !errors.Is(err, ErrBadKind) {
			t.Errorf("protocol decoder accepted a %v prefix: %v", k, err)
		}
	}
}

// TestCommitSizesDistinctFromStamp guards the size-based demultiplexing
// in the serving path: commit datagrams must not collide with the stamp
// sizes (or each other's direction) once sealed.
func TestCommitSizesDistinctFromStamp(t *testing.T) {
	sizes := map[int]string{
		TimeRequestSize:  "TimeRequest",
		TimeResponseSize: "TimeResponse",
	}
	for sz, name := range map[int]string{
		CommitRequestSize:  "CommitRequest",
		CommitResponseSize: "CommitResponse",
	} {
		if prev, dup := sizes[sz]; dup {
			t.Errorf("%s size %d collides with %s", name, sz, prev)
		}
		sizes[sz] = name
	}
}

func TestCommitVerdictString(t *testing.T) {
	for v, want := range map[CommitVerdict]string{
		CommitOK: "ok", CommitSealed: "sealed", CommitFenced: "fenced",
		CommitBadToken: "bad-token", CommitUnavailable: "unavailable",
		CommitOverloaded: "overloaded", CommitVerdict(0): "CommitVerdict(0)",
	} {
		if got := v.String(); got != want {
			t.Errorf("CommitVerdict(%d).String() = %q, want %q", uint8(v), got, want)
		}
	}
}

func TestCommitKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCommitLock: "CommitLock", KindCommitUnlock: "CommitUnlock",
		KindCommitStatus: "CommitStatus",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}
