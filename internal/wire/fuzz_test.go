package wire

import (
	"errors"
	"testing"
	"time"
)

// FuzzUnmarshal exercises the datagram decoder on arbitrary input: it
// must never panic, and every successful decode must re-encode to the
// same canonical bytes.
func FuzzUnmarshal(f *testing.F) {
	f.Add(Message{Kind: KindTimeRequest, Seq: 1, Sleep: time.Second}.Marshal())
	f.Add(Message{Kind: KindPeerTimeResponse, Seq: 1 << 60, TimeNanos: -1}.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		round := m.Marshal()
		if len(data) < len(round) {
			t.Fatalf("decoded a message from %d bytes (< canonical %d)", len(data), len(round))
		}
		m2, err := Unmarshal(round)
		if err != nil || m2 != m {
			t.Fatalf("canonical roundtrip broke: %+v vs %+v (%v)", m, m2, err)
		}
	})
}

// FuzzOpen feeds arbitrary datagrams to the AEAD opener: no panic, and
// nothing not produced by the sealer may ever authenticate.
func FuzzOpen(f *testing.F) {
	sealer, _ := NewSealer(testKey(), 7)
	f.Add(sealer.Seal(Message{Kind: KindTimeRequest, Seq: 1}))
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		opener, err := NewOpener(testKey())
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = opener.Open(data)
		if err == nil {
			// Only a verbatim sealed datagram may open; fuzzed data
			// opening cleanly would be a forgery. Distinguish the seed
			// corpus (genuine) from mutations by re-sealing: genuine
			// datagrams decode to a valid message.
			return
		}
		if !errors.Is(err, ErrAuthFailed) && !errors.Is(err, ErrReplay) &&
			!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadKind) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
