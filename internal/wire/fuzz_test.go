package wire

import (
	"errors"
	"testing"
	"time"
)

// FuzzUnmarshal exercises the datagram decoder on arbitrary input: it
// must never panic, and every successful decode must re-encode to the
// same canonical bytes.
func FuzzUnmarshal(f *testing.F) {
	f.Add(Message{Kind: KindTimeRequest, Seq: 1, Sleep: time.Second}.Marshal())
	f.Add(Message{Kind: KindPeerTimeResponse, Seq: 1 << 60, TimeNanos: -1}.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		round := m.Marshal()
		if len(data) < len(round) {
			t.Fatalf("decoded a message from %d bytes (< canonical %d)", len(data), len(round))
		}
		m2, err := Unmarshal(round)
		if err != nil || m2 != m {
			t.Fatalf("canonical roundtrip broke: %+v vs %+v (%v)", m, m2, err)
		}
	})
}

// FuzzPeerTimeDecode exercises the decoder specifically on the peer
// untainting path (PeerTimeRequest/PeerTimeResponse): arbitrary input
// must never panic, truncation must fail with ErrTruncated, and every
// successful peer-message decode must roundtrip canonically with its
// timestamp intact — a node adopting a peer timestamp mangled by the
// codec would corrupt its trusted clock.
func FuzzPeerTimeDecode(f *testing.F) {
	f.Add(Message{Kind: KindPeerTimeRequest, Seq: 42}.Marshal())
	f.Add(Message{Kind: KindPeerTimeResponse, Seq: 43, TimeNanos: 1719412345678901234}.Marshal())
	f.Add(Message{Kind: KindPeerTimeResponse, Seq: ^uint64(0), TimeNanos: -1}.Marshal())
	f.Add(Message{Kind: KindPeerTimeRequest, Seq: 1}.Marshal()[:12]) // truncated
	f.Add([]byte{byte(KindPeerTimeResponse)})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadKind) {
				t.Fatalf("unexpected decode error class: %v", err)
			}
			if errors.Is(err, ErrTruncated) && len(data) >= len(Message{}.Marshal()) {
				t.Fatalf("%d bytes reported as truncated", len(data))
			}
			return
		}
		if m.Kind != KindPeerTimeRequest && m.Kind != KindPeerTimeResponse {
			return
		}
		m2, err := Unmarshal(m.Marshal())
		if err != nil || m2 != m {
			t.Fatalf("peer message roundtrip broke: %+v vs %+v (%v)", m, m2, err)
		}
		if m2.TimeNanos != m.TimeNanos {
			t.Fatalf("peer timestamp mangled: %d vs %d", m.TimeNanos, m2.TimeNanos)
		}
	})
}

// FuzzOpenPeerTimeTruncated feeds the opener sealed peer-time
// datagrams cut or grown to arbitrary lengths — malformed nonce
// lengths (shorter than the 12-byte nonce) included. Nothing may
// panic, and anything that authenticates must be a verbatim sealer
// output: it carries the genuine authenticated sender identity and a
// canonically decodable message. (A datagram grown with garbage and
// cut back to the genuine bytes IS the genuine datagram.)
func FuzzOpenPeerTimeTruncated(f *testing.F) {
	const senderID = 9
	sealer, _ := NewSealer(testKey(), senderID)
	genuineReq := sealer.Seal(Message{Kind: KindPeerTimeRequest, Seq: 5})
	genuineResp := sealer.Seal(Message{Kind: KindPeerTimeResponse, Seq: 5, TimeNanos: 1e18})
	f.Add(genuineReq, len(genuineReq))
	f.Add(genuineResp, len(genuineResp))
	f.Add(genuineResp, 0)
	f.Add(genuineResp, 5)  // shorter than the nonce
	f.Add(genuineResp, 12) // nonce only, no ciphertext
	f.Add(genuineResp, len(genuineResp)-1)
	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		if cut < 0 {
			cut = -cut
		}
		if len(data) > 0 {
			cut %= len(data) + 1
		} else {
			cut = 0
		}
		data = data[:cut]
		opener, err := NewOpener(testKey())
		if err != nil {
			t.Fatal(err)
		}
		m, sender, err := opener.Open(data)
		if err == nil {
			if sender != senderID {
				t.Fatalf("forged sender %d authenticated (message %+v)", sender, m)
			}
			if m.Kind < KindTimeRequest || m.Kind > KindChimerReport {
				t.Fatalf("invalid kind %d authenticated", m.Kind)
			}
			return
		}
		if !errors.Is(err, ErrAuthFailed) && !errors.Is(err, ErrReplay) &&
			!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadKind) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}

// FuzzChimerReportDecode exercises the decoder on the gossip path
// (KindChimerReport): arbitrary input must never panic, and every
// successful chimer-report decode must roundtrip with the accreditation
// bitmask (TimeNanos) and the credibility timestamp (Sleep) intact.
// A codec that flips bitmask bits would let the gossip layer accredit
// peers nobody vouched for.
func FuzzChimerReportDecode(f *testing.F) {
	f.Add(Message{Kind: KindChimerReport, Seq: 1, TimeNanos: 0b1011, Sleep: time.Duration(1719412345678901234)}.Marshal())
	f.Add(Message{Kind: KindChimerReport, Seq: 2, TimeNanos: -1}.Marshal())              // all 64 bits set
	f.Add(Message{Kind: KindChimerReport, Seq: 3, TimeNanos: int64(1) << 62}.Marshal())  // high node id
	f.Add(Message{Kind: KindChimerReport, Seq: ^uint64(0), TimeNanos: 0}.Marshal()[:20]) // truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadKind) {
				t.Fatalf("unexpected decode error class: %v", err)
			}
			return
		}
		if m.Kind != KindChimerReport {
			return
		}
		m2, err := Unmarshal(m.Marshal())
		if err != nil || m2 != m {
			t.Fatalf("chimer report roundtrip broke: %+v vs %+v (%v)", m, m2, err)
		}
		if uint64(m2.TimeNanos) != uint64(m.TimeNanos) {
			t.Fatalf("accreditation bitmask mangled: %b vs %b", uint64(m.TimeNanos), uint64(m2.TimeNanos))
		}
		if m2.Sleep != m.Sleep {
			t.Fatalf("credibility timestamp mangled: %d vs %d", m.Sleep, m2.Sleep)
		}
	})
}

// FuzzSealedGatherExchange drives the sealed untaint-gather and gossip
// exchanges end to end with fuzz-chosen payloads: a PeerTimeResponse
// (the timestamp a tainted node would adopt) and a ChimerReport (the
// accreditation a gossip view would merge). The genuine datagrams must
// open verbatim with payloads intact; any single-byte corruption must
// fail authentication — never decode to a different payload.
func FuzzSealedGatherExchange(f *testing.F) {
	f.Add(uint64(5), int64(1e18), uint64(0b101), uint32(0), byte(0))
	f.Add(uint64(1)<<60, int64(-1), ^uint64(0), uint32(7), byte(0xFF))
	f.Add(uint64(0), int64(0), uint64(0), uint32(1000), byte(1))
	f.Fuzz(func(t *testing.T, seq uint64, ts int64, mask uint64, corruptAt uint32, flip byte) {
		const senderID = 3
		sealer, err := NewSealer(testKey(), senderID)
		if err != nil {
			t.Fatal(err)
		}
		datagrams := []struct {
			name string
			msg  Message
		}{
			{"peer response", Message{Kind: KindPeerTimeResponse, Seq: seq, TimeNanos: ts}},
			{"chimer report", Message{Kind: KindChimerReport, Seq: seq, TimeNanos: int64(mask), Sleep: time.Duration(ts)}},
		}
		for _, d := range datagrams {
			sealed := sealer.Seal(d.msg)
			opener, err := NewOpener(testKey())
			if err != nil {
				t.Fatal(err)
			}
			got, sender, err := opener.Open(sealed)
			if err != nil {
				t.Fatalf("%s: genuine datagram rejected: %v", d.name, err)
			}
			if sender != senderID || got != d.msg {
				t.Fatalf("%s: payload mangled in flight: %+v from %d", d.name, got, sender)
			}
			if flip == 0 {
				continue // identity corruption: nothing to test
			}
			corrupted := append([]byte(nil), sealed...)
			corrupted[int(corruptAt)%len(corrupted)] ^= flip
			got2, sender2, err := opener.Open(corrupted)
			if err == nil {
				t.Fatalf("%s: corrupted datagram authenticated: %+v from %d", d.name, got2, sender2)
			}
			if !errors.Is(err, ErrAuthFailed) && !errors.Is(err, ErrReplay) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadKind) {
				t.Fatalf("%s: unexpected error class: %v", d.name, err)
			}
		}
	})
}

// FuzzClientStampRoundtrip drives the client-facing serving exchange
// end to end with fuzz-chosen payloads: a TimeRequest is marshaled,
// sealed, opened, and unmarshaled (and likewise the TimeResponse the
// serving layer would answer with). The genuine datagrams must survive
// verbatim — a codec that mangled the client ID would misroute rate
// limits, and one that mangled the timestamp would defeat the whole
// service. Any single-byte corruption must fail authentication, and
// arbitrary bytes fed to the decoders must never panic.
func FuzzClientStampRoundtrip(f *testing.F) {
	f.Add(uint64(7), uint64(1), byte(FlagWantToken), []byte("doc"), int64(1e18), byte(StatusOK), uint32(3), byte(1))
	f.Add(^uint64(0), uint64(0), byte(0), []byte{}, int64(-1), byte(StatusOverloaded), uint32(40), byte(0xFF))
	f.Add(uint64(0), ^uint64(0), byte(0xFF), []byte{0xAA}, int64(0), byte(StatusUnavailable), uint32(0), byte(0))
	f.Fuzz(func(t *testing.T, clientID, seq uint64, flags byte, doc []byte, ts int64, status byte, corruptAt uint32, flip byte) {
		const senderID = 21
		sealer, err := NewSealer(testKey(), senderID)
		if err != nil {
			t.Fatal(err)
		}
		req := TimeRequest{ClientID: clientID, Seq: seq, Flags: flags}
		copy(req.Hash[:], doc)
		resp := TimeResponse{ClientID: clientID, Seq: seq, Status: StampStatus(status%3 + 1), Nanos: ts, HasToken: flags&FlagWantToken != 0}
		copy(resp.Token[:], doc)
		datagrams := []struct {
			name  string
			plain []byte
			check func([]byte) error
		}{
			{"request", req.Marshal(), func(b []byte) error {
				got, err := UnmarshalTimeRequest(b)
				if err != nil {
					return err
				}
				if got != req {
					t.Fatalf("request mangled: %+v vs %+v", got, req)
				}
				return nil
			}},
			{"response", resp.Marshal(), func(b []byte) error {
				got, err := UnmarshalTimeResponse(b)
				if err != nil {
					return err
				}
				if got != resp {
					t.Fatalf("response mangled: %+v vs %+v", got, resp)
				}
				return nil
			}},
		}
		for _, d := range datagrams {
			opener, err := NewOpener(testKey())
			if err != nil {
				t.Fatal(err)
			}
			sealed := sealer.SealDatagramAppend(nil, d.plain)
			plain, sender, err := opener.OpenDatagramInto(nil, sealed)
			if err != nil {
				t.Fatalf("%s: genuine datagram rejected: %v", d.name, err)
			}
			if sender != senderID {
				t.Fatalf("%s: sender %d authenticated, want %d", d.name, sender, senderID)
			}
			if err := d.check(plain); err != nil {
				t.Fatalf("%s: decode after seal/open: %v", d.name, err)
			}
			// Decoders must tolerate the raw fuzz bytes too.
			_, _ = UnmarshalTimeRequest(doc)
			_, _ = UnmarshalTimeResponse(doc)
			if flip == 0 {
				continue // identity corruption: nothing to test
			}
			corrupted := append([]byte(nil), sealed...)
			corrupted[int(corruptAt)%len(corrupted)] ^= flip
			if plain2, sender2, err := opener.OpenDatagramInto(nil, corrupted); err == nil {
				t.Fatalf("%s: corrupted datagram authenticated: %x from %d", d.name, plain2, sender2)
			}
		}
	})
}

// FuzzReplayCache drives the sliding anti-replay window with an
// arbitrary counter sequence and checks its two safety invariants
// against a map-based model: no counter is ever accepted twice, and
// counter zero is never accepted. The fuzz input encodes a mix of
// fresh counters, stale replays, and large forward jumps.
func FuzzReplayCache(f *testing.F) {
	f.Add([]byte{1, 2, 3, 2, 1})
	f.Add([]byte{255, 0, 255, 128, 1})
	f.Add([]byte{10, 10, 10, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		w := &replayWindow{}
		accepted := map[uint64]bool{}
		var cursor uint64
		for _, b := range data {
			// Map each byte to a counter near the moving cursor so the
			// sequence mixes replays, in-window stragglers, and jumps.
			var counter uint64
			switch {
			case b < 128:
				counter = cursor + uint64(b)%80 // replay or short jump
			case b < 250:
				if delta := uint64(b - 128); delta <= cursor {
					counter = cursor - delta // stale, possibly beyond window
				}
			default:
				counter = cursor + 64 + uint64(b) // far forward jump
			}
			if w.accept(counter) {
				if counter == 0 {
					t.Fatal("window accepted counter 0")
				}
				if accepted[counter] {
					t.Fatalf("window accepted counter %d twice", counter)
				}
				accepted[counter] = true
				if counter > cursor {
					cursor = counter
				}
			}
		}
		// The window must always admit a counter beyond everything seen.
		if !w.accept(cursor + 100) {
			t.Fatalf("window rejected fresh counter %d", cursor+100)
		}
	})
}

// FuzzOpen feeds arbitrary datagrams to the AEAD opener: no panic, and
// nothing not produced by the sealer may ever authenticate.
func FuzzOpen(f *testing.F) {
	sealer, _ := NewSealer(testKey(), 7)
	f.Add(sealer.Seal(Message{Kind: KindTimeRequest, Seq: 1}))
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		opener, err := NewOpener(testKey())
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = opener.Open(data)
		if err == nil {
			// Only a verbatim sealed datagram may open; fuzzed data
			// opening cleanly would be a forgery. Distinguish the seed
			// corpus (genuine) from mutations by re-sealing: genuine
			// datagrams decode to a valid message.
			return
		}
		if !errors.Is(err, ErrAuthFailed) && !errors.Is(err, ErrReplay) &&
			!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadKind) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
