// Package wire defines the Triad protocol's message formats and their
// authenticated encryption. As in the paper's implementation, all
// protocol communications are encrypted with AES-256-GCM, so a
// network-level attacker can delay, drop, duplicate, or reorder
// messages, but cannot read the requested sleep duration inside a
// calibration request nor forge timestamps.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Kind discriminates protocol messages.
type Kind uint8

// Message kinds. Values are part of the wire format; do not reorder.
const (
	// KindTimeRequest asks the Time Authority to wait the requested
	// sleep duration and then answer with its reference time. Sleep=0
	// requests an immediate response.
	KindTimeRequest Kind = iota + 1
	// KindTimeResponse carries the Time Authority's reference time.
	KindTimeResponse
	// KindPeerTimeRequest asks a peer enclave for its current trusted
	// timestamp (the "untainting" path after an AEX).
	KindPeerTimeRequest
	// KindPeerTimeResponse carries a peer's current trusted timestamp.
	// Tainted peers do not answer.
	KindPeerTimeResponse
	// KindChimerReport publishes the sender's true-chimer view (paper
	// §V: "nodes may publish ... their list of true-chimers"). The
	// TimeNanos field carries a bitmask over cluster identities (bit
	// i-1 set = node i considered a true-chimer) and Sleep carries the
	// sender's most recent Time-Authority-anchored timestamp, its
	// credibility claim. Original-protocol nodes ignore these reports.
	KindChimerReport
)

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case KindTimeRequest:
		return "TimeRequest"
	case KindTimeResponse:
		return "TimeResponse"
	case KindPeerTimeRequest:
		return "PeerTimeRequest"
	case KindPeerTimeResponse:
		return "PeerTimeResponse"
	case KindChimerReport:
		return "ChimerReport"
	case KindStampRequest:
		return "StampRequest"
	case KindStampResponse:
		return "StampResponse"
	case KindCommitLock:
		return "CommitLock"
	case KindCommitUnlock:
		return "CommitUnlock"
	case KindCommitStatus:
		return "CommitStatus"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is one Triad protocol datagram, before encryption.
type Message struct {
	Kind Kind
	// Seq matches responses to requests. Each requester chooses its own
	// sequence numbers.
	Seq uint64
	// Sleep is the wait the Time Authority is asked to observe before
	// responding (KindTimeRequest only).
	Sleep time.Duration
	// TimeNanos is a timestamp in nanoseconds: the authority's reference
	// time (KindTimeResponse) or the peer's trusted time
	// (KindPeerTimeResponse).
	TimeNanos int64
}

// MarshaledSize is the fixed encoded size: kind(1) + seq(8) + sleep(8) +
// time(8). A fixed size means message kinds are indistinguishable by
// length on the wire, as with the paper's encrypted UDP datagrams.
const MarshaledSize = 1 + 8 + 8 + 8

// ErrTruncated is returned when a datagram is too short to decode.
var ErrTruncated = errors.New("wire: truncated message")

// ErrBadKind is returned when a datagram carries an unknown kind.
var ErrBadKind = errors.New("wire: unknown message kind")

// Marshal encodes the message into a fresh fixed-size buffer.
func (m Message) Marshal() []byte {
	b := make([]byte, MarshaledSize)
	m.MarshalInto(b)
	return b
}

// MarshalInto encodes the message into b, which must be at least
// MarshaledSize bytes. The allocation-free form of Marshal.
func (m Message) MarshalInto(b []byte) {
	_ = b[MarshaledSize-1] // bounds hint
	b[0] = byte(m.Kind)
	binary.BigEndian.PutUint64(b[1:], m.Seq)
	binary.BigEndian.PutUint64(b[9:], uint64(m.Sleep))
	binary.BigEndian.PutUint64(b[17:], uint64(m.TimeNanos))
}

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < MarshaledSize {
		return Message{}, ErrTruncated
	}
	m := Message{
		Kind:      Kind(b[0]),
		Seq:       binary.BigEndian.Uint64(b[1:]),
		Sleep:     time.Duration(binary.BigEndian.Uint64(b[9:])),
		TimeNanos: int64(binary.BigEndian.Uint64(b[17:])),
	}
	if m.Kind < KindTimeRequest || m.Kind > KindChimerReport {
		return Message{}, fmt.Errorf("%w: %d", ErrBadKind, b[0])
	}
	return m, nil
}
