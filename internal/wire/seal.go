package wire

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeySize is the AES-256 key size in bytes.
const KeySize = 32

// nonceSize is the AES-GCM nonce size: 4-byte sender ID + 8-byte counter.
const nonceSize = 12

// gcmOverhead is the AES-GCM authentication tag size. newAEAD asserts
// the constructed AEAD agrees.
const gcmOverhead = 16

// SealedOverhead is what sealing adds to any plaintext: the nonce in
// front and the authentication tag behind. Sized-buffer arithmetic for
// the variable-plaintext datagrams (SealDatagramAppend) hangs off it.
const SealedOverhead = nonceSize + gcmOverhead

// SealedSize is the exact on-the-wire size of a sealed protocol
// datagram: nonce || ciphertext || tag. Fixed because messages are
// fixed-size (see MarshaledSize); useful for sizing reusable buffers.
const SealedSize = SealedOverhead + MarshaledSize

// Errors returned by Open.
var (
	// ErrAuthFailed is returned when a datagram fails AEAD
	// authentication (tampered, truncated, or wrong key).
	ErrAuthFailed = errors.New("wire: authentication failed")
	// ErrReplay is returned when a datagram's nonce counter was already
	// accepted from that sender.
	ErrReplay = errors.New("wire: replayed message")
)

// Sealer encrypts outgoing datagrams for one sender identity. Each seal
// consumes one nonce counter value; a Sealer must not be shared across
// concurrent goroutines without external synchronization (the simulation
// is single-threaded; the live transport wraps it in a mutex).
type Sealer struct {
	aead     cipher.AEAD
	senderID uint32
	counter  uint64
	// nonce/plain are per-sealer scratch so the append-style hot path
	// never allocates; single-goroutine use is already the type's
	// contract (the counter would race first).
	nonce [nonceSize]byte
	plain [MarshaledSize]byte
}

// NewSealer creates a sealer for the given 32-byte pre-shared cluster key
// and unique sender identity. Two senders must never share an identity:
// nonce reuse under the same key would void all confidentiality.
func NewSealer(key []byte, senderID uint32) (*Sealer, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return &Sealer{aead: aead, senderID: senderID}, nil
}

// SenderID reports the sealer's sender identity.
func (s *Sealer) SenderID() uint32 { return s.senderID }

// NewSealerShard creates one of a node's concurrent sealers. A node
// that seals from several goroutines (drain shards, shed paths) gives
// each its own sealer under the shared key; nonce uniqueness then
// requires each sealer to own a disjoint nonce space, which this
// constructor provides by deriving the sender identity base+shard.
// The caller reserves a contiguous identity range [base, base+shards)
// for the node — identities are cheap (32-bit space) and receivers
// track replay windows per identity, so shards neither collide with
// each other nor perturb one another's windows. shard must be below
// shards and base+shard must not wrap the 32-bit identity space.
func NewSealerShard(key []byte, base uint32, shard, shards int) (*Sealer, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("wire: sealer shard count %d must be positive", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("wire: sealer shard %d out of range [0,%d)", shard, shards)
	}
	if uint64(base)+uint64(shards-1) > uint64(^uint32(0)) {
		return nil, fmt.Errorf("wire: sealer shard range [%d,%d+%d) wraps the 32-bit sender-ID space", base, base, shards)
	}
	return NewSealer(key, base+uint32(shard))
}

// Seal encrypts and authenticates a message. The output is
// nonce || ciphertext || tag, self-contained for datagram transport.
// It allocates a fresh buffer per call; hot paths that can recycle a
// buffer should use SealAppend.
func (s *Sealer) Seal(m Message) []byte {
	return s.SealAppend(make([]byte, 0, SealedSize), m)
}

// SealAppend encrypts and authenticates a message, appending the sealed
// datagram (nonce || ciphertext || tag, exactly SealedSize bytes) to dst
// and returning the extended slice. When dst has SealedSize spare
// capacity the call performs no heap allocation, which is what keeps the
// simulation's dispatch paths allocation-free: callers hold one scratch
// buffer per endpoint and reseal into it for every send.
//
//triad:hotpath
func (s *Sealer) SealAppend(dst []byte, m Message) []byte {
	m.MarshalInto(s.plain[:])
	return s.SealDatagramAppend(dst, s.plain[:])
}

// SealDatagramAppend seals an arbitrary-length plaintext datagram,
// appending nonce || ciphertext || tag (len(plaintext)+SealedOverhead
// bytes) to dst and returning the extended slice. It is the
// variable-size counterpart of SealAppend, used by the client-facing
// serving messages (TimeRequest/TimeResponse), which are larger than
// the fixed protocol Message. Like SealAppend, the call performs no
// heap allocation when dst has enough spare capacity.
//
//triad:hotpath
func (s *Sealer) SealDatagramAppend(dst, plaintext []byte) []byte {
	s.counter++
	binary.BigEndian.PutUint32(s.nonce[:4], s.senderID)
	binary.BigEndian.PutUint64(s.nonce[4:], s.counter)
	dst = append(dst, s.nonce[:]...)
	return s.aead.Seal(dst, s.nonce[:], plaintext, nil)
}

// Opener decrypts incoming datagrams and rejects replays. One Opener
// guards one receiving endpoint; it tracks a sliding replay window per
// sender.
type Opener struct {
	aead    cipher.AEAD
	windows map[uint32]*replayWindow
}

// NewOpener creates an opener for the given 32-byte pre-shared key.
func NewOpener(key []byte) (*Opener, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return &Opener{aead: aead, windows: make(map[uint32]*replayWindow)}, nil
}

// Open authenticates and decrypts a datagram produced by Seal, returning
// the message and the claimed (and authenticated) sender identity. It
// lets the AEAD allocate the plaintext buffer; hot paths should hold a
// scratch buffer and use OpenInto.
func (o *Opener) Open(b []byte) (Message, uint32, error) {
	return o.OpenInto(nil, b)
}

// OpenInto is Open with a caller-provided plaintext scratch buffer: the
// decrypted plaintext is written into scratch's spare capacity (scratch
// may be nil, in which case a buffer is allocated). With cap(scratch) >=
// MarshaledSize the steady-state path performs no heap allocation. The
// plaintext never escapes — the returned Message is a value — so one
// scratch buffer per receiving endpoint suffices.
//
//triad:hotpath
func (o *Opener) OpenInto(scratch []byte, b []byte) (Message, uint32, error) {
	plain, sender, err := o.OpenDatagramInto(scratch, b)
	if err != nil {
		return Message{}, 0, err
	}
	m, err := Unmarshal(plain)
	if err != nil {
		return Message{}, 0, err
	}
	return m, sender, nil
}

// OpenDatagramInto authenticates and decrypts any sealed datagram
// (fixed protocol Message or variable client datagram), enforcing the
// per-sender anti-replay window, and returns the raw plaintext with
// the authenticated sender identity. The plaintext is written into
// scratch's spare capacity (scratch may be nil); it aliases that
// buffer, so callers decode before reusing it. Kind-specific decoding
// is the caller's: the serving layer follows with UnmarshalTimeRequest
// where the protocol engine would use Unmarshal.
//
//triad:hotpath
func (o *Opener) OpenDatagramInto(scratch []byte, b []byte) ([]byte, uint32, error) {
	if len(b) < nonceSize+o.aead.Overhead() {
		return nil, 0, ErrAuthFailed
	}
	nonce := b[:nonceSize]
	sender := binary.BigEndian.Uint32(nonce[:4])
	counter := binary.BigEndian.Uint64(nonce[4:])
	plain, err := o.aead.Open(scratch[:0], nonce, b[nonceSize:], nil)
	if err != nil {
		return nil, 0, ErrAuthFailed
	}
	w := o.windows[sender]
	if w == nil {
		w = &replayWindow{} //triad:nolint:hotpath one-time allocation on the first datagram from a never-seen sender
		o.windows[sender] = w
	}
	if !w.accept(counter) {
		//triad:nolint:hotpath replay-rejection error path; the steady state never takes it
		return nil, 0, fmt.Errorf("%w: sender %d counter %d", ErrReplay, sender, counter)
	}
	return plain, sender, nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("wire: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("wire: new cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("wire: new GCM: %w", err)
	}
	if aead.Overhead() != gcmOverhead {
		return nil, fmt.Errorf("wire: unexpected AEAD overhead %d", aead.Overhead())
	}
	return aead, nil
}

// replayWindow is a 64-entry sliding anti-replay window (RFC 6479 style):
// it accepts each counter at most once and tolerates reordering within
// the window, which matters because the network (or the attacker) may
// reorder UDP datagrams.
type replayWindow struct {
	max    uint64
	bitmap uint64
}

func (w *replayWindow) accept(counter uint64) bool {
	if counter == 0 {
		return false // counters start at 1
	}
	switch {
	case counter > w.max:
		shift := counter - w.max
		if shift >= 64 {
			w.bitmap = 1
		} else {
			w.bitmap = w.bitmap<<shift | 1
		}
		w.max = counter
		return true
	case w.max-counter >= 64:
		return false // too old to verify
	default:
		bit := uint64(1) << (w.max - counter)
		if w.bitmap&bit != 0 {
			return false
		}
		w.bitmap |= bit
		return true
	}
}
