package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func testKey() []byte {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = byte(i * 7)
	}
	return key
}

func TestMessageRoundtrip(t *testing.T) {
	tests := []Message{
		{Kind: KindTimeRequest, Seq: 1, Sleep: time.Second},
		{Kind: KindTimeRequest, Seq: 2, Sleep: 0},
		{Kind: KindTimeResponse, Seq: 2, TimeNanos: 123456789},
		{Kind: KindPeerTimeRequest, Seq: 99},
		{Kind: KindPeerTimeResponse, Seq: 99, TimeNanos: -5}, // negative survives
		{Kind: KindChimerReport, Seq: 3, Sleep: 12345, TimeNanos: 0b1011},
	}
	for _, m := range tests {
		t.Run(m.Kind.String(), func(t *testing.T) {
			got, err := Unmarshal(m.Marshal())
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if got != m {
				t.Errorf("roundtrip = %+v, want %+v", got, m)
			}
		})
	}
}

func TestMessageFixedSize(t *testing.T) {
	// All kinds encode to the same length so an observer cannot classify
	// messages by size (the attacker must use timing, as in the paper).
	sizes := map[int]bool{}
	for _, m := range []Message{
		{Kind: KindTimeRequest, Sleep: time.Second},
		{Kind: KindTimeResponse, TimeNanos: 1 << 60},
		{Kind: KindPeerTimeRequest},
		{Kind: KindPeerTimeResponse, TimeNanos: 1},
	} {
		sizes[len(m.Marshal())] = true
	}
	if len(sizes) != 1 {
		t.Errorf("message sizes differ across kinds: %v", sizes)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, MarshaledSize-1)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short buffer err = %v, want ErrTruncated", err)
	}
	bad := Message{Kind: KindTimeRequest}.Marshal()
	bad[0] = 0
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadKind) {
		t.Errorf("kind 0 err = %v, want ErrBadKind", err)
	}
	bad[0] = 200
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadKind) {
		t.Errorf("kind 200 err = %v, want ErrBadKind", err)
	}
}

func TestKindString(t *testing.T) {
	if KindTimeRequest.String() != "TimeRequest" || Kind(77).String() != "Kind(77)" {
		t.Error("Kind.String misbehaves")
	}
}

func TestSealOpenRoundtrip(t *testing.T) {
	sealer, err := NewSealer(testKey(), 3)
	if err != nil {
		t.Fatalf("NewSealer: %v", err)
	}
	opener, err := NewOpener(testKey())
	if err != nil {
		t.Fatalf("NewOpener: %v", err)
	}
	msg := Message{Kind: KindTimeRequest, Seq: 7, Sleep: time.Second}
	sealed := sealer.Seal(msg)
	got, sender, err := opener.Open(sealed)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got != msg {
		t.Errorf("got %+v, want %+v", got, msg)
	}
	if sender != 3 {
		t.Errorf("sender = %d, want 3", sender)
	}
	if sealer.SenderID() != 3 {
		t.Errorf("SenderID = %d", sealer.SenderID())
	}
}

func TestSealHidesPlaintext(t *testing.T) {
	sealer, _ := NewSealer(testKey(), 1)
	msg := Message{Kind: KindTimeRequest, Seq: 1, Sleep: time.Second}
	sealed := sealer.Seal(msg)
	if bytes.Contains(sealed, msg.Marshal()) {
		t.Error("sealed datagram contains the plaintext")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	sealer, _ := NewSealer(testKey(), 1)
	opener, _ := NewOpener(testKey())
	sealed := sealer.Seal(Message{Kind: KindPeerTimeRequest, Seq: 5})
	for _, idx := range []int{0, nonceSize, len(sealed) - 1} {
		cp := append([]byte(nil), sealed...)
		cp[idx] ^= 0x01
		if _, _, err := opener.Open(cp); !errors.Is(err, ErrAuthFailed) {
			t.Errorf("tamper at %d: err = %v, want ErrAuthFailed", idx, err)
		}
	}
	if _, _, err := opener.Open(sealed[:10]); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("truncated: err = %v, want ErrAuthFailed", err)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	sealer, _ := NewSealer(testKey(), 1)
	otherKey := testKey()
	otherKey[0] ^= 0xFF
	opener, _ := NewOpener(otherKey)
	if _, _, err := opener.Open(sealer.Seal(Message{Kind: KindPeerTimeRequest, Seq: 1})); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong key: err = %v, want ErrAuthFailed", err)
	}
}

func TestOpenRejectsReplay(t *testing.T) {
	sealer, _ := NewSealer(testKey(), 1)
	opener, _ := NewOpener(testKey())
	sealed := sealer.Seal(Message{Kind: KindPeerTimeRequest, Seq: 1})
	if _, _, err := opener.Open(sealed); err != nil {
		t.Fatalf("first open: %v", err)
	}
	if _, _, err := opener.Open(sealed); !errors.Is(err, ErrReplay) {
		t.Errorf("replay: err = %v, want ErrReplay", err)
	}
}

func TestOpenToleratesReorderingWithinWindow(t *testing.T) {
	sealer, _ := NewSealer(testKey(), 1)
	opener, _ := NewOpener(testKey())
	var sealed [][]byte
	for i := 0; i < 10; i++ {
		sealed = append(sealed, sealer.Seal(Message{Kind: KindPeerTimeRequest, Seq: uint64(i)}))
	}
	// Deliver out of order: evens first, then odds.
	for i := 0; i < 10; i += 2 {
		if _, _, err := opener.Open(sealed[i]); err != nil {
			t.Fatalf("even %d: %v", i, err)
		}
	}
	for i := 1; i < 10; i += 2 {
		if _, _, err := opener.Open(sealed[i]); err != nil {
			t.Fatalf("odd %d: %v", i, err)
		}
	}
	// But each at most once.
	if _, _, err := opener.Open(sealed[3]); !errors.Is(err, ErrReplay) {
		t.Errorf("second delivery of #3: err = %v, want ErrReplay", err)
	}
}

func TestOpenRejectsTooOld(t *testing.T) {
	sealer, _ := NewSealer(testKey(), 1)
	opener, _ := NewOpener(testKey())
	first := sealer.Seal(Message{Kind: KindPeerTimeRequest, Seq: 0})
	var last []byte
	for i := 0; i < 70; i++ {
		last = sealer.Seal(Message{Kind: KindPeerTimeRequest, Seq: uint64(i + 1)})
	}
	if _, _, err := opener.Open(last); err != nil {
		t.Fatalf("latest: %v", err)
	}
	if _, _, err := opener.Open(first); !errors.Is(err, ErrReplay) {
		t.Errorf("64+ old message: err = %v, want ErrReplay", err)
	}
}

func TestSendersTrackedIndependently(t *testing.T) {
	s1, _ := NewSealer(testKey(), 1)
	s2, _ := NewSealer(testKey(), 2)
	opener, _ := NewOpener(testKey())
	// Both senders use counter 1; neither is a replay of the other.
	if _, _, err := opener.Open(s1.Seal(Message{Kind: KindPeerTimeRequest, Seq: 1})); err != nil {
		t.Fatalf("sender 1: %v", err)
	}
	if _, _, err := opener.Open(s2.Seal(Message{Kind: KindPeerTimeRequest, Seq: 1})); err != nil {
		t.Fatalf("sender 2: %v", err)
	}
}

func TestNewSealerBadKey(t *testing.T) {
	if _, err := NewSealer(make([]byte, 16), 1); err == nil {
		t.Error("16-byte key should be rejected (AES-256 only)")
	}
	if _, err := NewOpener(nil); err == nil {
		t.Error("nil key should be rejected")
	}
}

func TestSealOpenQuick(t *testing.T) {
	sealer, _ := NewSealer(testKey(), 9)
	opener, _ := NewOpener(testKey())
	f := func(kindRaw uint8, seq uint64, sleepNs int64, timeNs int64) bool {
		kind := Kind(kindRaw%5) + KindTimeRequest
		m := Message{Kind: kind, Seq: seq, Sleep: time.Duration(sleepNs), TimeNanos: timeNs}
		got, sender, err := opener.Open(sealer.Seal(m))
		return err == nil && got == m && sender == 9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReplayWindowUnit(t *testing.T) {
	var w replayWindow
	if w.accept(0) {
		t.Error("counter 0 must be rejected")
	}
	if !w.accept(1) || w.accept(1) {
		t.Error("counter 1: accept once")
	}
	if !w.accept(100) {
		t.Error("jump forward must be accepted")
	}
	if !w.accept(99) || w.accept(99) {
		t.Error("within-window out-of-order: accept once")
	}
	if w.accept(36) {
		t.Error("counter exactly 64 behind must be rejected")
	}
	if !w.accept(37) {
		t.Error("counter 63 behind should be accepted")
	}
	if !w.accept(200) {
		t.Error("large jump (>64) must reset the window and accept")
	}
	if !w.accept(137) || w.accept(137) {
		t.Error("unseen counter 63 behind the new max: accept exactly once")
	}
	if w.accept(136) {
		t.Error("counter exactly 64 behind the new max must be rejected")
	}
}

// TestReplayWindowShiftBoundary pins the window-advance boundary: a
// forward jump of exactly 64 must wipe all history (every retained bit
// would fall out of the window), while a jump of 63 keeps the oldest
// bit alive.
func TestReplayWindowShiftBoundary(t *testing.T) {
	// Shift of exactly 63: counter 1's bit survives at the window edge.
	var w replayWindow
	if !w.accept(1) || !w.accept(64) {
		t.Fatal("setup accepts failed")
	}
	if w.accept(1) {
		t.Error("counter 1 is 63 behind max 64: replay must still be remembered")
	}
	if !w.accept(2) || w.accept(2) {
		t.Error("unseen counter 2 at 62 behind: accept exactly once")
	}
	// Shift of exactly 64: history is wiped, and everything it covered is
	// now too old to verify anyway.
	w = replayWindow{}
	if !w.accept(1) || !w.accept(65) {
		t.Fatal("setup accepts failed")
	}
	if w.accept(1) {
		t.Error("counter 1 is exactly 64 behind max 65: must be rejected as too old")
	}
	if !w.accept(2) || w.accept(2) {
		t.Error("counter 2 at 63 behind the new max: accept exactly once")
	}
	if w.accept(65) {
		t.Error("max itself must be remembered across the shift")
	}
}

// TestReplayWindowPermutationProperty: any delivery order of a burst of
// 64 consecutive counters — the full window width — is accepted exactly
// once each, regardless of how the adversary reorders the datagrams.
func TestReplayWindowPermutationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		start := rng.Uint64()%1000 + 1
		perm := rng.Perm(64)
		var w replayWindow
		for i, p := range perm {
			c := start + uint64(p)
			if !w.accept(c) {
				t.Fatalf("trial %d: counter %d (pos %d of %v) rejected on first delivery", trial, c, i, perm)
			}
		}
		for _, p := range rng.Perm(64) {
			c := start + uint64(p)
			if w.accept(c) {
				t.Fatalf("trial %d: counter %d accepted twice", trial, c)
			}
		}
	}
}

func TestSealedSizeExact(t *testing.T) {
	sealer, _ := NewSealer(testKey(), 1)
	sealed := sealer.Seal(Message{Kind: KindTimeRequest, Seq: 1})
	if len(sealed) != SealedSize {
		t.Errorf("Seal output = %d bytes, SealedSize = %d", len(sealed), SealedSize)
	}
	prefix := []byte("prefix")
	out := sealer.SealAppend(prefix, Message{Kind: KindTimeRequest, Seq: 2})
	if len(out) != len(prefix)+SealedSize || string(out[:len(prefix)]) != "prefix" {
		t.Errorf("SealAppend must append exactly SealedSize bytes after dst")
	}
	opener, _ := NewOpener(testKey())
	if _, _, err := opener.Open(out[len(prefix):]); err != nil {
		t.Errorf("appended datagram failed to open: %v", err)
	}
}

func TestMarshalIntoMatchesMarshal(t *testing.T) {
	m := Message{Kind: KindChimerReport, Seq: 3, Sleep: 12345, TimeNanos: -9}
	buf := make([]byte, MarshaledSize)
	m.MarshalInto(buf)
	if !bytes.Equal(buf, m.Marshal()) {
		t.Error("MarshalInto and Marshal disagree")
	}
}

// TestSealAppendZeroAllocSteadyState is the allocation regression guard
// CI runs for the seal path.
func TestSealAppendZeroAllocSteadyState(t *testing.T) {
	sealer, _ := NewSealer(testKey(), 1)
	msg := Message{Kind: KindTimeRequest, Seq: 7, Sleep: time.Second}
	buf := make([]byte, 0, SealedSize)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = sealer.SealAppend(buf[:0], msg)
	})
	if allocs != 0 {
		t.Errorf("SealAppend into scratch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestOpenIntoZeroAllocSteadyState is the allocation regression guard
// CI runs for the open path (the per-sender window is allocated on the
// warmup call).
func TestOpenIntoZeroAllocSteadyState(t *testing.T) {
	sealer, _ := NewSealer(testKey(), 1)
	opener, _ := NewOpener(testKey())
	const runs = 1000
	sealed := make([][]byte, runs+2)
	for i := range sealed {
		sealed[i] = sealer.Seal(Message{Kind: KindTimeRequest, Seq: uint64(i)})
	}
	scratch := make([]byte, 0, MarshaledSize)
	next := 0
	allocs := testing.AllocsPerRun(runs, func() {
		if _, _, err := opener.OpenInto(scratch, sealed[next]); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if allocs != 0 {
		t.Errorf("OpenInto with scratch allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkSealOpenRoundtrip is the headline wire metric tracked in
// BENCH_pr3.json: one SealAppend + OpenInto per iteration, the exact
// datagram path the engine dispatch loop runs.
func BenchmarkSealOpenRoundtrip(b *testing.B) {
	sealer, _ := NewSealer(testKey(), 1)
	opener, _ := NewOpener(testKey())
	msg := Message{Kind: KindTimeRequest, Seq: 7, Sleep: time.Second}
	buf := make([]byte, 0, SealedSize)
	scratch := make([]byte, 0, MarshaledSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sealer.SealAppend(buf[:0], msg)
		if _, _, err := opener.OpenInto(scratch, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeal(b *testing.B) {
	sealer, _ := NewSealer(testKey(), 1)
	msg := Message{Kind: KindTimeRequest, Seq: 1, Sleep: time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sealer.Seal(msg)
	}
}

func BenchmarkOpen(b *testing.B) {
	sealer, _ := NewSealer(testKey(), 1)
	opener, _ := NewOpener(testKey())
	// Pre-seal so replay windows accept each datagram exactly once.
	sealed := make([][]byte, b.N)
	for i := range sealed {
		sealed[i] = sealer.Seal(Message{Kind: KindTimeRequest, Seq: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opener.Open(sealed[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	msg := Message{Kind: KindTimeResponse, Seq: 42, TimeNanos: 1 << 60}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		msg.Marshal()
	}
}

func TestNewSealerShardDisjointNonces(t *testing.T) {
	key := testKey()
	const base, shards = 40, 3
	opener, _ := NewOpener(key)
	ids := map[uint32]bool{}
	for shard := 0; shard < shards; shard++ {
		s, err := NewSealerShard(key, base, shard, shards)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if ids[s.SenderID()] {
			t.Fatalf("shard %d reuses sender ID %d", shard, s.SenderID())
		}
		ids[s.SenderID()] = true
		if want := uint32(base + shard); s.SenderID() != want {
			t.Fatalf("shard %d sender ID = %d, want %d", shard, s.SenderID(), want)
		}
		// Each shard's stream opens independently: same key, per-sender
		// replay windows, so counter 1 from every shard is accepted.
		sealed := s.SealDatagramAppend(nil, []byte("shard payload"))
		plain, sender, err := opener.OpenDatagramInto(nil, sealed)
		if err != nil || sender != s.SenderID() || string(plain) != "shard payload" {
			t.Fatalf("shard %d open: plain=%q sender=%d err=%v", shard, plain, sender, err)
		}
	}
}

func TestNewSealerShardValidation(t *testing.T) {
	key := testKey()
	cases := []struct {
		name          string
		base          uint32
		shard, shards int
	}{
		{"zero shards", 1, 0, 0},
		{"negative shard", 1, -1, 4},
		{"shard at count", 1, 4, 4},
		{"range wraps uint32", ^uint32(0), 1, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewSealerShard(key, c.base, c.shard, c.shards); err == nil {
				t.Fatalf("NewSealerShard(%d, %d, %d) accepted", c.base, c.shard, c.shards)
			}
		})
	}
	if _, err := NewSealerShard(key[:5], 1, 0, 1); err == nil {
		t.Fatal("short key accepted")
	}
}
