package triadtime

import (
	"time"

	"triadtime/internal/attack"
	"triadtime/internal/experiment"
	"triadtime/internal/resilient"
	"triadtime/internal/simnet"
)

// Lab is the deterministic simulation laboratory: a cluster of Triad
// nodes, a Time Authority, interrupt environments and optional
// attackers, all driven by a discrete-event scheduler. Hours of
// protocol time simulate in milliseconds, reproducibly per seed.
//
// Lab wraps internal/experiment.Cluster; the full instrumentation
// (drift series, state timelines, counters) is available through the
// embedded field for analysis code.
type Lab struct {
	*experiment.Cluster
}

// LabConfig configures a simulation laboratory.
type LabConfig struct {
	// Seed drives all randomness. Same seed, same run.
	Seed uint64
	// Nodes is the cluster size (default 3, as in the paper).
	Nodes int
	// Hardened builds Section V resilient nodes instead of original
	// Triad nodes.
	Hardened bool
	// Gossip additionally enables true-chimer report gossip on
	// hardened nodes (§V's "publish their list of true-chimers").
	Gossip bool
	// LossProb degrades every network link with this packet-loss
	// probability (0 = the default reliable LAN model).
	LossProb float64
}

// AttackMode re-exports the calibration delay attack modes.
type AttackMode = attack.Mode

// Attack modes (paper §III-C).
const (
	// FPlus slows the victim's perceived clock (F_calib inflated).
	FPlus = attack.ModeFPlus
	// FMinus quickens the victim's perceived clock; the variant that
	// propagates to honest peers (paper Figure 6).
	FMinus = attack.ModeFMinus
)

// NewLab builds a simulation laboratory.
func NewLab(cfg LabConfig) (*Lab, error) {
	ec := experiment.ClusterConfig{
		Seed:     cfg.Seed,
		Nodes:    cfg.Nodes,
		Hardened: cfg.Hardened || cfg.Gossip,
		HardenedTweak: func(_ int, rc *resilient.Config) {
			rc.EnableGossip = cfg.Gossip
		},
	}
	if cfg.LossProb > 0 {
		link := simnet.DefaultLink()
		link.LossProb = cfg.LossProb
		ec.Link = &link
	}
	cluster, err := experiment.NewCluster(ec)
	if err != nil {
		return nil, err
	}
	return &Lab{Cluster: cluster}, nil
}

// UseTriadLikeAEXs puts node i under the paper's simulated interrupt
// distribution (inter-AEX gaps of 10ms/532ms/1.59s, each w.p. 1/3).
func (l *Lab) UseTriadLikeAEXs(i int) { l.SetEnv(i, experiment.EnvTriadLike) }

// UseIsolatedCore puts node i in the low-AEX environment (only
// residual machine-wide OS interrupts, every ~5.4 minutes).
func (l *Lab) UseIsolatedCore(i int) { l.SetEnv(i, experiment.EnvNone) }

// AttackCalibration attaches an F+/F- delay attacker against node i's
// Time Authority traffic (paper §III-C). Attach before Start.
func (l *Lab) AttackCalibration(i int, mode AttackMode) {
	l.Net.AttachMiddlebox(attack.NewDelay(attack.DelayConfig{
		Victim:    l.Nodes[i].Addr(),
		Authority: experiment.TAAddr,
		Mode:      mode,
	}))
}

// TrustedNow serves a trusted timestamp from node i at the current
// simulated instant.
func (l *Lab) TrustedNow(i int) (Timestamp, error) {
	ts, err := l.Nodes[i].TrustedNow()
	if err != nil {
		return Timestamp{}, err
	}
	return Timestamp{Nanos: ts}, nil
}

// ReferenceNow reports the simulation's current reference time as
// nanoseconds since the simulated epoch — what an honest observer
// compares trusted timestamps against.
func (l *Lab) ReferenceNow() int64 { return int64(l.Sched.Now()) }

// NodeClock exposes node i as a raw-nanosecond trusted clock, the form
// the application toolkits (tsa, lease) consume.
func (l *Lab) NodeClock(i int) interface{ TrustedNow() (int64, error) } {
	return l.Nodes[i]
}

// Run advances the simulation by d of simulated time.
func (l *Lab) Run(d time.Duration) { l.RunFor(d) }
