package lease

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// atomicClock is a race-safe strictly-monotonic trusted clock for the
// concurrency tests (the shared fakeClock mutates state unguarded).
type atomicClock struct {
	nanos atomic.Int64
}

func (c *atomicClock) TrustedNow() (int64, error) {
	return c.nanos.Add(1), nil
}

// TestConcurrentAcquireRenewRelease exercises the manager from many
// goroutines under -race: concurrent Acquire/Renew/Release/Holder/
// Stats over a small set of contended resources. Beyond the race
// detector, it checks the exclusivity invariant end to end: every
// successful Acquire happens only after the previous holder's lease
// was released or expired, so per-resource grant counts line up.
func TestConcurrentAcquireRenewRelease(t *testing.T) {
	clock := &atomicClock{}
	clock.nanos.Store(int64(time.Hour))
	m, err := NewManager(clock, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers   = 8
		resources = 3
		rounds    = 200
	)
	var acquired [resources]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			holder := fmt.Sprintf("w%d", w)
			for i := 0; i < rounds; i++ {
				res := fmt.Sprintf("r%d", (w+i)%resources)
				l, err := m.Acquire(res, holder, time.Millisecond)
				if err != nil {
					if !errors.Is(err, ErrHeld) {
						t.Errorf("acquire: %v", err)
						return
					}
					// Contended: consult the holder and move on.
					if _, _, err := m.Holder(res); err != nil {
						t.Errorf("holder: %v", err)
						return
					}
					continue
				}
				acquired[(w+i)%resources].Add(1)
				if i%3 == 0 {
					if _, err := m.Renew(l, time.Millisecond); err != nil && !errors.Is(err, ErrNotHeld) {
						t.Errorf("renew: %v", err)
						return
					}
				}
				if err := m.Release(l); err != nil && !errors.Is(err, ErrNotHeld) {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	granted, denied, expired := m.Stats()
	var want int64
	for i := range acquired {
		want += acquired[i].Load()
	}
	if int64(granted) != want {
		t.Fatalf("granted %d, workers saw %d", granted, want)
	}
	if granted+denied+expired == 0 {
		t.Fatal("no activity recorded")
	}
}

// TestConcurrentSingleResource hammers one resource: with a TTL far
// longer than the test, at most one Acquire may ever succeed between
// releases, whatever the interleaving.
func TestConcurrentSingleResource(t *testing.T) {
	clock := &atomicClock{}
	clock.nanos.Store(int64(time.Hour))
	m, err := NewManager(clock, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	var inCritical atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			holder := fmt.Sprintf("w%d", w)
			for i := 0; i < 300; i++ {
				l, err := m.Acquire("the-resource", holder, time.Minute)
				if err != nil {
					continue
				}
				if n := inCritical.Add(1); n != 1 {
					t.Errorf("%d holders inside the lease at once", n)
				}
				inCritical.Add(-1)
				if err := m.Release(l); err != nil {
					t.Errorf("release: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
}
