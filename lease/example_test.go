package lease_test

import (
	"errors"
	"fmt"
	"time"

	"triadtime"
	"triadtime/lease"
)

// ExampleManager shows exclusive trusted-time leases granted against a
// simulated Triad node's clock.
func ExampleManager() {
	lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: 8})
	if err != nil {
		panic(err)
	}
	lab.Start()
	lab.Run(30 * time.Second) // calibrate

	leases, err := lease.NewManager(lab.NodeClock(0), time.Hour)
	if err != nil {
		panic(err)
	}
	l, err := leases.Acquire("gpu-0", "alice", time.Minute)
	if err != nil {
		panic(err)
	}
	fmt.Println("alice holds:", l.Holder == "alice")

	_, err = leases.Acquire("gpu-0", "bob", time.Minute)
	fmt.Println("bob refused while held:", errors.Is(err, lease.ErrHeld))

	lab.Run(2 * time.Minute) // the lease expires on trusted time
	_, err = leases.Acquire("gpu-0", "bob", time.Minute)
	fmt.Println("bob acquires after expiry:", err == nil)
	// Output:
	// alice holds: true
	// bob refused while held: true
	// bob acquires after expiry: true
}
