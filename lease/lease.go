// Package lease implements trusted-time resource leasing in the spirit
// of T-Lease, another use-case the paper's introduction motivates:
// time-constrained resource allocation whose mutual-exclusion safety
// depends on the arbiter's clock being trustworthy.
//
// A Manager grants exclusive, expiring leases on named resources,
// deciding expiry against a trusted Clock (a Triad node). The
// invariant — at most one valid holder per resource at any trusted
// instant — is property-tested; whether it holds against *reference*
// time depends on the clock's integrity, which is precisely what the
// repository's attack experiments quantify (see examples/lease-manager).
package lease

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Clock supplies trusted timestamps in nanoseconds.
type Clock interface {
	TrustedNow() (int64, error)
}

// Lease is one granted reservation.
type Lease struct {
	Resource string
	Holder   string
	// Token distinguishes incarnations of a resource's lease: a renew
	// or release must present the current token, so a stale holder
	// cannot release its successor's lease.
	Token uint64
	// GrantedNanos and ExpiryNanos are trusted timestamps.
	GrantedNanos int64
	ExpiryNanos  int64
}

// Remaining computes the lease's remaining validity at trusted now.
func (l Lease) Remaining(nowNanos int64) time.Duration {
	return time.Duration(l.ExpiryNanos - nowNanos)
}

// Errors returned by Manager operations.
var (
	// ErrHeld is returned when the resource has an unexpired lease.
	ErrHeld = errors.New("lease: resource is held")
	// ErrNotHeld is returned when no current lease matches the request.
	ErrNotHeld = errors.New("lease: no matching lease")
	// ErrBadTTL is returned for non-positive or excessive TTLs.
	ErrBadTTL = errors.New("lease: invalid ttl")
	// ErrClockUnavailable is returned when the trusted clock cannot
	// supply a timestamp (node tainted, calibrating, or unreachable).
	// The clock's own error remains in the chain, so callers can match
	// either this sentinel or the underlying cause with errors.Is.
	ErrClockUnavailable = errors.New("lease: trusted clock unavailable")
)

// Manager grants leases against a trusted clock. Safe for concurrent
// use: the serving layer drives one manager from every shard. The
// clock is read outside the lease table lock, so a slow trusted read
// never serializes unrelated resources; the grant decision itself is
// atomic under the internal mutex.
type Manager struct {
	clock  Clock
	maxTTL time.Duration

	mu     sync.Mutex
	leases map[string]Lease
	nextID uint64

	granted, denied, expired int
}

// NewManager creates a manager. maxTTL bounds how long any lease may
// run (0 means 1 hour).
func NewManager(clock Clock, maxTTL time.Duration) (*Manager, error) {
	if clock == nil {
		return nil, errors.New("lease: clock is required")
	}
	if maxTTL <= 0 {
		maxTTL = time.Hour
	}
	return &Manager{clock: clock, maxTTL: maxTTL, leases: make(map[string]Lease)}, nil
}

// Acquire grants resource to holder for ttl of trusted time. It fails
// with ErrHeld while an unexpired lease exists and propagates clock
// unavailability (the safe default: no trusted time, no new leases).
func (m *Manager) Acquire(resource, holder string, ttl time.Duration) (Lease, error) {
	if ttl <= 0 || ttl > m.maxTTL {
		return Lease{}, fmt.Errorf("%w: %v (max %v)", ErrBadTTL, ttl, m.maxTTL)
	}
	now, err := m.clock.TrustedNow()
	if err != nil {
		return Lease{}, fmt.Errorf("%w: %w", ErrClockUnavailable, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.leases[resource]; ok {
		if cur.ExpiryNanos > now {
			m.denied++
			return Lease{}, fmt.Errorf("%w: %q by %q for another %v",
				ErrHeld, resource, cur.Holder, cur.Remaining(now).Round(time.Millisecond))
		}
		m.expired++
	}
	m.nextID++
	l := Lease{
		Resource:     resource,
		Holder:       holder,
		Token:        m.nextID,
		GrantedNanos: now,
		ExpiryNanos:  now + int64(ttl),
	}
	m.leases[resource] = l
	m.granted++
	return l, nil
}

// Renew extends a currently-valid lease by ttl from trusted now. The
// presented lease must be the current incarnation and unexpired.
func (m *Manager) Renew(l Lease, ttl time.Duration) (Lease, error) {
	if ttl <= 0 || ttl > m.maxTTL {
		return Lease{}, fmt.Errorf("%w: %v (max %v)", ErrBadTTL, ttl, m.maxTTL)
	}
	now, err := m.clock.TrustedNow()
	if err != nil {
		return Lease{}, fmt.Errorf("%w: %w", ErrClockUnavailable, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.leases[l.Resource]
	if !ok || cur.Token != l.Token || cur.ExpiryNanos <= now {
		return Lease{}, ErrNotHeld
	}
	cur.ExpiryNanos = now + int64(ttl)
	m.leases[l.Resource] = cur
	return cur, nil
}

// Release ends a lease early. Releasing an expired or superseded lease
// returns ErrNotHeld (it no longer guards anything).
func (m *Manager) Release(l Lease) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.leases[l.Resource]
	if !ok || cur.Token != l.Token {
		return ErrNotHeld
	}
	delete(m.leases, l.Resource)
	return nil
}

// Holder reports the resource's current holder if its lease is valid
// at trusted now.
func (m *Manager) Holder(resource string) (string, bool, error) {
	now, err := m.clock.TrustedNow()
	if err != nil {
		return "", false, fmt.Errorf("%w: %w", ErrClockUnavailable, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.leases[resource]
	if !ok || cur.ExpiryNanos <= now {
		return "", false, nil
	}
	return cur.Holder, true, nil
}

// Stats reports grant/denial/expiry-takeover counts.
func (m *Manager) Stats() (granted, denied, expiredTakeovers int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.granted, m.denied, m.expired
}
