package lease

import (
	"errors"
	"math/rand/v2"
	"testing"
	"time"
)

type fakeClock struct {
	nanos int64
	fail  bool
}

func (c *fakeClock) TrustedNow() (int64, error) {
	if c.fail {
		return 0, errors.New("tainted")
	}
	c.nanos++ // strictly monotonic, like a Triad node
	return c.nanos, nil
}

func (c *fakeClock) advance(d time.Duration) { c.nanos += int64(d) }

func newManager(t *testing.T) (*Manager, *fakeClock) {
	t.Helper()
	clock := &fakeClock{nanos: int64(time.Hour)}
	m, err := NewManager(clock, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return m, clock
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(nil, time.Minute); err == nil {
		t.Error("nil clock accepted")
	}
	m, err := NewManager(&fakeClock{}, 0)
	if err != nil || m.maxTTL != time.Hour {
		t.Errorf("default maxTTL = %v, err %v", m.maxTTL, err)
	}
}

func TestAcquireExclusive(t *testing.T) {
	m, clock := newManager(t)
	l, err := m.Acquire("gpu-0", "alice", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if l.Holder != "alice" || l.Resource != "gpu-0" {
		t.Errorf("lease = %+v", l)
	}
	if _, err := m.Acquire("gpu-0", "bob", time.Minute); !errors.Is(err, ErrHeld) {
		t.Errorf("err = %v, want ErrHeld", err)
	}
	// A different resource is free.
	if _, err := m.Acquire("gpu-1", "bob", time.Minute); err != nil {
		t.Errorf("independent resource refused: %v", err)
	}
	holder, held, err := m.Holder("gpu-0")
	if err != nil || !held || holder != "alice" {
		t.Errorf("Holder = %q/%v/%v", holder, held, err)
	}
	clock.advance(2 * time.Minute)
	if _, held, _ := m.Holder("gpu-0"); held {
		t.Error("expired lease still reported held")
	}
}

func TestAcquireAfterExpiry(t *testing.T) {
	m, clock := newManager(t)
	if _, err := m.Acquire("r", "alice", time.Minute); err != nil {
		t.Fatal(err)
	}
	clock.advance(61 * time.Second)
	l, err := m.Acquire("r", "bob", time.Minute)
	if err != nil {
		t.Fatalf("takeover after expiry refused: %v", err)
	}
	if l.Holder != "bob" {
		t.Errorf("holder = %q", l.Holder)
	}
	granted, denied, expired := m.Stats()
	if granted != 2 || denied != 0 || expired != 1 {
		t.Errorf("stats = %d/%d/%d", granted, denied, expired)
	}
}

func TestRenewExtendsOnlyCurrentLease(t *testing.T) {
	m, clock := newManager(t)
	l, _ := m.Acquire("r", "alice", time.Minute)
	clock.advance(30 * time.Second)
	renewed, err := m.Renew(l, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if renewed.ExpiryNanos <= l.ExpiryNanos {
		t.Error("renew did not extend")
	}
	// A stale incarnation cannot renew.
	clock.advance(2 * time.Minute)
	if _, err := m.Renew(renewed, time.Minute); !errors.Is(err, ErrNotHeld) {
		t.Errorf("expired renew err = %v, want ErrNotHeld", err)
	}
	l2, _ := m.Acquire("r", "bob", time.Minute)
	if _, err := m.Renew(l, time.Minute); !errors.Is(err, ErrNotHeld) {
		t.Error("superseded lease renewed")
	}
	if _, err := m.Renew(l2, time.Minute); err != nil {
		t.Errorf("current lease renew failed: %v", err)
	}
}

func TestReleaseOnlyCurrentIncarnation(t *testing.T) {
	m, clock := newManager(t)
	l1, _ := m.Acquire("r", "alice", time.Minute)
	clock.advance(2 * time.Minute)
	l2, _ := m.Acquire("r", "bob", time.Minute)
	// Stale holder cannot release the successor's lease.
	if err := m.Release(l1); !errors.Is(err, ErrNotHeld) {
		t.Errorf("stale release err = %v, want ErrNotHeld", err)
	}
	if err := m.Release(l2); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, err := m.Acquire("r", "carol", time.Minute); err != nil {
		t.Errorf("acquire after release failed: %v", err)
	}
}

func TestTTLValidation(t *testing.T) {
	m, _ := newManager(t)
	if _, err := m.Acquire("r", "a", 0); !errors.Is(err, ErrBadTTL) {
		t.Error("zero ttl accepted")
	}
	if _, err := m.Acquire("r", "a", time.Hour); !errors.Is(err, ErrBadTTL) {
		t.Error("over-max ttl accepted")
	}
	l, _ := m.Acquire("r", "a", time.Minute)
	if _, err := m.Renew(l, -time.Second); !errors.Is(err, ErrBadTTL) {
		t.Error("negative renew ttl accepted")
	}
}

func TestClockUnavailabilityIsSafe(t *testing.T) {
	m, clock := newManager(t)
	l, _ := m.Acquire("r", "alice", time.Minute)
	clock.fail = true
	if _, err := m.Acquire("q", "bob", time.Minute); err == nil {
		t.Error("acquire succeeded without trusted time")
	}
	if _, err := m.Renew(l, time.Minute); err == nil {
		t.Error("renew succeeded without trusted time")
	}
	if _, _, err := m.Holder("r"); err == nil {
		t.Error("holder check succeeded without trusted time")
	}
	// Release needs no clock: it only removes.
	if err := m.Release(l); err != nil {
		t.Errorf("release: %v", err)
	}
}

// TestMutualExclusionProperty drives random acquire/renew/release
// schedules and asserts the core invariant: whenever an Acquire
// succeeds, the previous lease (if any) had expired or been released
// at that trusted instant.
func TestMutualExclusionProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 50; trial++ {
		m, clock := newManager(t)
		type holding struct {
			l     Lease
			valid bool
		}
		var cur holding
		for step := 0; step < 200; step++ {
			clock.advance(time.Duration(rng.IntN(30)) * time.Second)
			holder := []string{"alice", "bob", "carol"}[rng.IntN(3)]
			switch rng.IntN(3) {
			case 0:
				l, err := m.Acquire("r", holder, time.Minute)
				if err == nil {
					if cur.valid && cur.l.ExpiryNanos > l.GrantedNanos {
						t.Fatalf("trial %d: lease granted at %d while previous valid until %d",
							trial, l.GrantedNanos, cur.l.ExpiryNanos)
					}
					cur = holding{l: l, valid: true}
				}
			case 1:
				if cur.valid {
					if l, err := m.Renew(cur.l, time.Minute); err == nil {
						cur.l = l
					}
				}
			case 2:
				if cur.valid && rng.IntN(2) == 0 {
					_ = m.Release(cur.l)
					cur.valid = false
				}
			}
			if cur.valid {
				now := clock.nanos
				if cur.l.ExpiryNanos <= now {
					cur.valid = false // expired naturally
				}
			}
		}
	}
}

// errClock fails every read with a fixed underlying error, so tests can
// assert the full wrap chain.
type errClock struct{ err error }

func (c errClock) TrustedNow() (int64, error) { return 0, c.err }

func TestClockUnavailableSentinel(t *testing.T) {
	cause := errors.New("node tainted by AEX burst")
	m, err := NewManager(errClock{err: cause}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		op   func() error
	}{
		{"acquire", func() error { _, err := m.Acquire("r", "alice", time.Second); return err }},
		{"renew", func() error { _, err := m.Renew(Lease{Resource: "r", Token: 1}, time.Second); return err }},
		{"holder", func() error { _, _, err := m.Holder("r"); return err }},
	}
	for _, tc := range cases {
		err := tc.op()
		if err == nil {
			t.Fatalf("%s: succeeded without trusted time", tc.name)
		}
		if !errors.Is(err, ErrClockUnavailable) {
			t.Errorf("%s: error %v does not match ErrClockUnavailable", tc.name, err)
		}
		if !errors.Is(err, cause) {
			t.Errorf("%s: error %v lost the underlying clock error", tc.name, err)
		}
		if errors.Is(err, ErrHeld) || errors.Is(err, ErrNotHeld) || errors.Is(err, ErrBadTTL) {
			t.Errorf("%s: error %v matches an unrelated sentinel", tc.name, err)
		}
	}
	// Sentinel must stay distinguishable from validation errors.
	if _, err := m.Acquire("r", "alice", -time.Second); !errors.Is(err, ErrBadTTL) || errors.Is(err, ErrClockUnavailable) {
		t.Errorf("bad-ttl error %v misclassified", err)
	}
}
