package triadtime

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"triadtime/internal/authority"
	"triadtime/internal/commit"
	"triadtime/internal/core"
	"triadtime/internal/engine"
	"triadtime/internal/metrics"
	"triadtime/internal/resilient"
	"triadtime/internal/serve"
	"triadtime/internal/transport"
	"triadtime/tsa"
)

// LiveConfig configures a live (UDP) Triad node.
type LiveConfig struct {
	// Key is the cluster's pre-shared 32-byte AES-256 key.
	Key []byte
	// ID is this node's identity.
	ID NodeID
	// Listen is the UDP address to bind, e.g. "0.0.0.0:7101".
	Listen string
	// Directory maps every participant (peers and authority) to its
	// UDP address.
	Directory map[NodeID]string
	// Peers lists the other Triad nodes.
	Peers []NodeID
	// Authority is the Time Authority's identity.
	Authority NodeID
	// Authorities lists the Time Authorities for multi-authority quorum
	// calibration (Marzullo consensus over per-authority confidence
	// intervals). With two or more entries the node accepts a reference
	// only when a quorum of authorities agrees; Authority may then be
	// left zero (the first entry is the default). Every entry must
	// appear in Directory.
	Authorities []NodeID
	// QuorumMinAgree overrides the quorum agreement rule: accept an
	// intersection supported by at least this many authorities instead
	// of a strict majority. 0 keeps the majority rule. A 2-authority
	// deployment sets 1 to survive one authority loss.
	QuorumMinAgree int
	// QuorumRecheck overrides the steady-state quorum revalidation
	// period (default 10s). Only meaningful with multiple Authorities.
	QuorumRecheck time.Duration
	// AEXPeriod optionally delivers synthetic AEXs at this period (a
	// stand-in for the OS interrupts real enclaves observe through
	// AEX-Notify). Zero disables them.
	AEXPeriod time.Duration
	// Hardened selects the Section V resilient protocol instead of the
	// original Triad.
	Hardened bool

	// CalibSleeps overrides the original protocol's calibration sleep
	// ladder (default {0, 1s}). Shorter sleeps trade calibration
	// accuracy for startup latency — useful in tests and demos. Ignored
	// when Hardened.
	CalibSleeps []time.Duration
	// CalibSamplesPerSleep overrides how many uninterrupted samples the
	// original protocol collects per sleep value (default 4). Ignored
	// when Hardened.
	CalibSamplesPerSleep int
	// CalibWindow overrides the hardened variant's two-exchange
	// calibration window (default 8s). Ignored unless Hardened.
	CalibWindow time.Duration
}

// liveNode is the common handle surface of both protocol variants.
type liveNode interface {
	Start()
	State() State
	FCalib() float64
	Counters() engine.Counters
	TrustedNow() (int64, error)
}

// LiveNode is a running Triad participant bound to a UDP socket. It is
// safe for concurrent use: every call is serialized onto the
// platform's dispatch goroutine.
type LiveNode struct {
	platform  *transport.Platform
	node      liveNode
	id        NodeID
	statusSrv *http.Server

	clientSrv  *serve.LiveServer
	clientWait *metrics.Histogram
	vault      *commit.Vault
}

// NewLiveNode binds the socket, builds the node (original or hardened)
// and starts the protocol.
func NewLiveNode(cfg LiveConfig) (*LiveNode, error) {
	conn, err := net.ListenPacket("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("triadtime: listen %q: %w", cfg.Listen, err)
	}
	platform, err := transport.New(transport.Config{
		Conn:      conn,
		Directory: cfg.Directory,
		AEXPeriod: cfg.AEXPeriod,
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	ln := &LiveNode{platform: platform, id: cfg.ID}
	var buildErr error
	ok := platform.Do(func() {
		if cfg.Hardened {
			ln.node, buildErr = resilient.NewNode(platform, resilient.Config{
				Key:            cfg.Key,
				Addr:           cfg.ID,
				Peers:          cfg.Peers,
				Authority:      cfg.Authority,
				Authorities:    cfg.Authorities,
				QuorumMinAgree: cfg.QuorumMinAgree,
				QuorumRecheck:  cfg.QuorumRecheck,
				CalibWindow:    cfg.CalibWindow,
			})
		} else {
			ln.node, buildErr = core.NewNode(platform, core.Config{
				Key:                  cfg.Key,
				Addr:                 cfg.ID,
				Peers:                cfg.Peers,
				Authority:            cfg.Authority,
				Authorities:          cfg.Authorities,
				QuorumMinAgree:       cfg.QuorumMinAgree,
				QuorumRecheck:        cfg.QuorumRecheck,
				CalibSleeps:          cfg.CalibSleeps,
				CalibSamplesPerSleep: cfg.CalibSamplesPerSleep,
			})
		}
	})
	if !ok {
		platform.Close()
		return nil, fmt.Errorf("triadtime: platform closed during setup")
	}
	if buildErr != nil {
		platform.Close()
		return nil, buildErr
	}
	platform.Do(ln.node.Start)
	return ln, nil
}

// TrustedNow serves one trusted timestamp. It returns ErrUnavailable
// while the node is tainted or calibrating.
func (ln *LiveNode) TrustedNow() (Timestamp, error) {
	var ts int64
	var err error
	if !ln.platform.Do(func() { ts, err = ln.node.TrustedNow() }) {
		return Timestamp{}, fmt.Errorf("triadtime: node closed")
	}
	if err != nil {
		return Timestamp{}, err
	}
	return Timestamp{Nanos: ts}, nil
}

// TrustedNanos serves one trusted timestamp as raw nanoseconds — the
// form application toolkits (tsa.Clock, lease.Clock) consume.
func (ln *LiveNode) TrustedNanos() (int64, error) {
	ts, err := ln.TrustedNow()
	if err != nil {
		return 0, err
	}
	return ts.Nanos, nil
}

// State reports the node's protocol state.
func (ln *LiveNode) State() State {
	var s State
	ln.platform.Do(func() { s = ln.node.State() })
	return s
}

// FCalib reports the calibrated TSC rate (0 before calibration).
func (ln *LiveNode) FCalib() float64 {
	var f float64
	ln.platform.Do(func() { f = ln.node.FCalib() })
	return f
}

// LocalAddr reports the bound UDP address.
func (ln *LiveNode) LocalAddr() net.Addr { return ln.platform.LocalAddr() }

// Snapshot is a point-in-time view of a live node, for operational
// monitoring.
type Snapshot struct {
	State        string  `json:"state"`
	FCalibHz     float64 `json:"fCalibHz"`
	TrustedNanos int64   `json:"trustedNanos,omitempty"`
	Available    bool    `json:"available"`
	AEXCount     int     `json:"aexCount"`
	// Counters carries the node's cumulative protocol counters. Both
	// variants report the same set; the hardening tallies (rejections,
	// probes, gossip) stay zero on an original-protocol node.
	Counters Counters `json:"counters"`
}

// Snapshot captures the node's current status.
func (ln *LiveNode) Snapshot() Snapshot {
	var s Snapshot
	ln.platform.Do(func() {
		s.State = ln.node.State().String()
		s.FCalibHz = ln.node.FCalib()
		s.Counters = ln.node.Counters()
		if ts, err := ln.node.TrustedNow(); err == nil {
			s.TrustedNanos = ts
			s.Available = true
		}
	})
	s.AEXCount = ln.platform.AEXCount()
	return s
}

// ServeStatus exposes the node's Snapshot as JSON over HTTP at /status
// and a Prometheus-style text exposition at /metrics. It returns the
// bound listener address; the server stops when the node closes.
func (ln *LiveNode) ServeStatus(listen string) (net.Addr, error) {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("triadtime: status listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(ln.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s := ln.Snapshot()
		available := 0
		if s.Available {
			available = 1
		}
		fmt.Fprintf(w, "triad_node_available %d\n", available)
		fmt.Fprintf(w, "triad_node_fcalib_hz %g\n", s.FCalibHz)
		fmt.Fprintf(w, "triad_node_aex_total %d\n", s.AEXCount)
		fmt.Fprintf(w, "triad_node_trusted_nanos %d\n", s.TrustedNanos)
		fmt.Fprintf(w, "triad_node_ta_refs_total %d\n", s.Counters.TAReferences)
		fmt.Fprintf(w, "triad_node_peer_untaints_total %d\n", s.Counters.PeerUntaints)
		fmt.Fprintf(w, "triad_node_served_total %d\n", s.Counters.Served)
		fmt.Fprintf(w, "triad_node_rejected_peers_total %d\n", s.Counters.RejectedPeers)
		fmt.Fprintf(w, "triad_node_rtt_rejections_total %d\n", s.Counters.RTTRejections)
		fmt.Fprintf(w, "triad_node_probes_total %d\n", s.Counters.Probes)
		if ln.clientSrv != nil {
			c := ln.clientSrv.Counters()
			fmt.Fprintf(w, "triad_serve_received_total %d\n", c.Received)
			fmt.Fprintf(w, "triad_serve_served_total %d\n", c.Served)
			fmt.Fprintf(w, "triad_serve_shed_queue_total %d\n", c.ShedQueueFull)
			fmt.Fprintf(w, "triad_serve_shed_ratelimit_total %d\n", c.ShedRateLimited)
			fmt.Fprintf(w, "triad_serve_unavailable_total %d\n", c.Unavailable)
			fmt.Fprintf(w, "triad_serve_tokens_issued_total %d\n", c.TokensIssued)
			fmt.Fprintf(w, "triad_serve_batches_total %d\n", c.Batches)
			fmt.Fprintf(w, "triad_serve_send_errors_total %d\n", c.SendErrors)
			fmt.Fprintf(w, "triad_serve_oversize_drops_total %d\n", c.OversizeDrops)
			snap := ln.clientWait.Snapshot()
			fmt.Fprintf(w, "triad_serve_queue_wait_count %d\n", snap.Count)
			for _, q := range []float64{0.5, 0.9, 0.99} {
				fmt.Fprintf(w, "triad_serve_queue_wait_nanos{quantile=\"%g\"} %d\n", q, snap.Quantile(q))
			}
		}
		if ln.vault != nil {
			cc := ln.vault.Counters()
			fmt.Fprintf(w, "triad_commit_epoch %d\n", ln.vault.Epoch())
			fmt.Fprintf(w, "triad_commit_locks_issued_total %d\n", cc.LocksIssued)
			fmt.Fprintf(w, "triad_commit_unlocks_granted_total %d\n", cc.UnlocksGranted)
			fmt.Fprintf(w, "triad_commit_unlocks_refused_early_total %d\n", cc.UnlocksRefusedEarly)
			fmt.Fprintf(w, "triad_commit_unlocks_refused_fenced_total %d\n", cc.UnlocksRefusedFenced)
			fmt.Fprintf(w, "triad_commit_unlocks_refused_degraded_total %d\n", cc.UnlocksRefusedDegraded)
			fmt.Fprintf(w, "triad_commit_unlocks_refused_unavailable_total %d\n", cc.UnlocksRefusedUnavailable)
			fmt.Fprintf(w, "triad_commit_forged_tokens_total %d\n", cc.UnlocksRefusedForged)
			fmt.Fprintf(w, "triad_commit_anchor_rollbacks_total %d\n", cc.AnchorRollbacks)
			fmt.Fprintf(w, "triad_commit_clock_rollbacks_total %d\n", cc.ClockRollbacks)
			fmt.Fprintf(w, "triad_commit_persist_errors_total %d\n", cc.PersistErrors)
			fmt.Fprintf(w, "triad_commit_restarts_total %d\n", cc.Restarts)
		}
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(l) }()
	ln.statusSrv = srv
	return l.Addr(), nil
}

// InjectAEX severs time continuity once, as an OS interrupt would.
func (ln *LiveNode) InjectAEX() { ln.platform.InjectAEX() }

// ClientServeConfig configures a node's client-facing timestamp
// service (see internal/serve): sealed TimeRequest/TimeResponse
// datagrams on their own UDP socket and key, batched against the
// node's trusted clock.
type ClientServeConfig struct {
	// Listen is the UDP address for client traffic, e.g. "0.0.0.0:7201"
	// — a separate socket from the protocol's.
	Listen string
	// Key seals client traffic. Deliberately distinct from the cluster
	// key: client credentials must not open protocol datagrams.
	Key []byte
	// Sockets is how many SO_REUSEPORT sockets share the client port —
	// one receive goroutine each, so request authentication scales
	// across cores. 0 or 1 binds a single socket; values above 1
	// require platform support (Linux).
	Sockets int
	// TSAKey, when set, enables RFC3161-style token issuance for
	// requests carrying wire.FlagWantToken.
	TSAKey []byte
	// CommitAnchor, when set, enables the time-locked commitment
	// subsystem (wire kinds 8-10): the path names the vault's persisted
	// monotonic anchor file, which carries the lease epoch and trusted
	// high-water mark across restarts. Requires TSAKey — commitment
	// tokens are HMAC-bound to it (domain-separated, so sharing the key
	// with the stamper is safe). The vault vouches for unlocks only
	// while the node's state is OK: Degraded holdover serves timestamps
	// but never vouches.
	CommitAnchor string
	// RatePerClient, Shards, QueueDepth, BatchMax and Tick tune
	// admission control and batching; zero values use serve's defaults.
	RatePerClient        float64
	Shards               int
	QueueDepth, BatchMax int
	Tick                 time.Duration
}

// ServeClients starts the client-facing serving endpoint. Timestamps
// come from this node's TrustedNow — one read per batch, amortized
// across up to BatchMax responses. Returns the bound UDP address; the
// endpoint stops when the node closes. Call at most once.
func (ln *LiveNode) ServeClients(cfg ClientServeConfig) (net.Addr, error) {
	if ln.clientSrv != nil {
		return nil, fmt.Errorf("triadtime: ServeClients called twice")
	}
	clock := serve.ClockFunc(ln.TrustedNanos)
	var stamper *tsa.Stamper
	var err error
	if cfg.TSAKey != nil {
		stamper, err = tsa.New(tsa.ClockFunc(ln.TrustedNanos), cfg.TSAKey)
		if err != nil {
			return nil, err
		}
	}
	var vault *commit.Vault
	if cfg.CommitAnchor != "" {
		if cfg.TSAKey == nil {
			return nil, fmt.Errorf("triadtime: CommitAnchor requires TSAKey (commitment tokens are bound to it)")
		}
		vault, err = commit.Open(commit.Config{
			Clock: commit.ClockFunc(ln.TrustedNanos),
			Vouch: func() bool { return ln.State() == StateOK },
			Key:   cfg.TSAKey,
			Store: commit.NewFileStore(cfg.CommitAnchor),
		})
		if err != nil {
			return nil, fmt.Errorf("triadtime: commit vault: %w", err)
		}
	}
	wait := metrics.NewLatencyHistogram()
	srv, err := serve.NewLiveServer(serve.LiveConfig{
		Listen:   cfg.Listen,
		Sockets:  cfg.Sockets,
		Key:      cfg.Key,
		SenderID: uint32(ln.id),
		Tick:     cfg.Tick,
		Server: serve.Config{
			Shards:        cfg.Shards,
			QueueDepth:    cfg.QueueDepth,
			BatchMax:      cfg.BatchMax,
			RatePerClient: cfg.RatePerClient,
			Clock:         clock,
			Stamper:       stamper,
			Vault:         vault,
			QueueWait:     wait,
		},
	})
	if err != nil {
		return nil, err
	}
	ln.clientSrv = srv
	ln.clientWait = wait
	ln.vault = vault
	return srv.LocalAddr(), nil
}

// CommitCounters snapshots the commitment vault's cumulative tallies
// (zero value if ServeClients did not enable the commit subsystem).
func (ln *LiveNode) CommitCounters() commit.Counters {
	if ln.vault == nil {
		return commit.Counters{}
	}
	return ln.vault.Counters()
}

// CommitEpoch reports the vault's current lease epoch (0 without a
// commit subsystem). The epoch increases on every restart and on every
// detected anchor rollback; lease-mode tokens from older epochs are
// fenced.
func (ln *LiveNode) CommitEpoch() uint64 {
	if ln.vault == nil {
		return 0
	}
	return ln.vault.Epoch()
}

// ServeCounters snapshots the client-serving tallies, engine and
// transport level (zero value if ServeClients was not started).
func (ln *LiveNode) ServeCounters() serve.LiveCounters {
	if ln.clientSrv == nil {
		return serve.LiveCounters{}
	}
	return ln.clientSrv.Counters()
}

// Close shuts the node down (including its status server and client
// serving endpoint, if any).
func (ln *LiveNode) Close() error {
	if ln.statusSrv != nil {
		_ = ln.statusSrv.Close()
	}
	if ln.clientSrv != nil {
		_ = ln.clientSrv.Close()
	}
	if ln.vault != nil {
		// Persist the trusted high-water mark one last time: the next
		// incarnation's rollback detection is only as fresh as the
		// anchor on disk.
		_ = ln.vault.Flush()
	}
	return ln.platform.Close()
}

// AuthorityServer is a running live Time Authority.
type AuthorityServer struct {
	srv *authority.Server
}

// NewAuthorityServer binds a UDP socket and starts serving reference
// time to the cluster identified by key.
func NewAuthorityServer(listen string, key []byte, id NodeID) (*AuthorityServer, error) {
	return NewAuthorityServerClock(listen, key, id, func() int64 { return time.Now().UnixNano() })
}

// NewAuthorityServerClock is NewAuthorityServer with an explicit
// reference clock — the hook security experiments use to stand up a
// deliberately lying authority against a quorum of honest ones.
func NewAuthorityServerClock(listen string, key []byte, id NodeID, clock func() int64) (*AuthorityServer, error) {
	conn, err := net.ListenPacket("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("triadtime: listen %q: %w", listen, err)
	}
	srv, err := authority.NewServerClock(conn, key, uint32(id), clock)
	if err != nil {
		conn.Close()
		return nil, err
	}
	go func() { _ = srv.Serve() }()
	return &AuthorityServer{srv: srv}, nil
}

// LocalAddr reports the bound UDP address.
func (a *AuthorityServer) LocalAddr() net.Addr { return a.srv.LocalAddr() }

// Served reports how many time references have been served to node id.
func (a *AuthorityServer) Served(id NodeID) int {
	return a.srv.Authority().Served(uint32(id))
}

// Close stops the server.
func (a *AuthorityServer) Close() error { return a.srv.Close() }
