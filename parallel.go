package triadtime

import (
	"context"
	"fmt"

	"triadtime/internal/experiment/runner"
)

// RunSeeds executes fn once per seed on a worker pool and returns the
// results in seed order. Every experiment in this package is a
// deterministic simulation owning all of its state, so runs
// parallelize with no loss of reproducibility: the returned slice is
// identical at any worker count.
//
// workers sizes the pool; 0 uses all CPUs. A panic inside fn is
// captured and returned as that seed's error rather than crashing the
// sweep. The context cancels seeds not yet dispatched.
//
//	avail, err := triadtime.RunSeeds(ctx, 0, seeds,
//	    func(ctx context.Context, seed uint64) (float64, error) {
//	        lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: seed})
//	        ...
//	    })
func RunSeeds[T any](ctx context.Context, workers int, seeds []uint64, fn func(ctx context.Context, seed uint64) (T, error)) ([]T, error) {
	tasks := make([]runner.Task[T], len(seeds))
	for i, seed := range seeds {
		tasks[i] = runner.Task[T]{
			Name: fmt.Sprintf("seed %d", seed),
			Run:  func(ctx context.Context) (T, error) { return fn(ctx, seed) },
		}
	}
	return runner.Run(ctx, runner.Config{Workers: workers}, tasks).Values()
}

// Seeds builds the n consecutive seeds base, base+1, ... — the shape
// every seed sweep in this repository uses.
func Seeds(base uint64, n int) []uint64 { return runner.Seeds(base, n) }
