package triadtime

import (
	"context"
	"errors"
	"testing"
	"time"
)

// labDrift runs a 3-node lab for 30 s of simulated time and returns
// node 0's drift from the reference timeline.
func labDrift(seed uint64) (time.Duration, error) {
	lab, err := NewLab(LabConfig{Seed: seed})
	if err != nil {
		return 0, err
	}
	for i := 0; i < 3; i++ {
		lab.UseTriadLikeAEXs(i)
	}
	lab.Start()
	lab.Run(30 * time.Second)
	ts, err := lab.TrustedNow(0)
	if err != nil {
		return 0, err
	}
	return time.Duration(ts.Nanos - lab.ReferenceNow()), nil
}

func TestRunSeedsMatchesSerial(t *testing.T) {
	seeds := Seeds(11, 4)

	serial := make([]time.Duration, len(seeds))
	for i, seed := range seeds {
		d, err := labDrift(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		serial[i] = d
	}

	parallel, err := RunSeeds(context.Background(), 4, seeds,
		func(_ context.Context, seed uint64) (time.Duration, error) {
			return labDrift(seed)
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if parallel[i] != serial[i] {
			t.Errorf("seed %d: parallel drift %v != serial %v", seeds[i], parallel[i], serial[i])
		}
	}
}

func TestRunSeedsError(t *testing.T) {
	boom := errors.New("boom")
	_, err := RunSeeds(context.Background(), 2, Seeds(1, 3),
		func(_ context.Context, seed uint64) (int, error) {
			if seed == 2 {
				return 0, boom
			}
			return int(seed), nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}
