// Package triadtime is an open-source Go implementation and security
// analysis of Triad's TEE trusted-time protocol, reproducing
// "An Open-source Implementation and Security Analysis of Triad's TEE
// Trusted Time Protocol" (DSN-S 2025).
//
// The package offers two entry points:
//
//   - Live deployment: NewLiveNode runs a Triad node over encrypted UDP
//     (see also cmd/triad-node and cmd/timeauthority). Without SGX
//     hardware the enclave substrate is substituted per DESIGN.md: the
//     guest TSC maps onto the monotonic clock, AEXs come from a
//     synthetic interrupt source, and the protocol logic is exactly the
//     code the security analysis exercises.
//
//   - Simulation laboratory: NewLab builds a deterministic
//     discrete-event cluster (nodes, Time Authority, interrupt
//     environments, attackers) on which every figure and table of the
//     paper is regenerated. See internal/experiment and cmd/triad-sim.
//
// The protocol implementations live in internal/core (the original
// Triad protocol, faithful to the paper's specification including its
// vulnerabilities) and internal/resilient (the Section V hardened
// variant).
package triadtime

import (
	"time"

	"triadtime/internal/core"
	"triadtime/internal/engine"
	"triadtime/internal/simnet"
	"triadtime/internal/wire"
)

// State is a node's protocol state (FullCalib, RefCalib, Tainted, OK).
type State = core.State

// Protocol states, re-exported for applications.
const (
	StateInit      = core.StateInit
	StateFullCalib = core.StateFullCalib
	StateRefCalib  = core.StateRefCalib
	StateTainted   = core.StateTainted
	StateOK        = core.StateOK
	// StateDegraded is the multi-authority holdover state: the node
	// keeps serving on its last quorum-validated calibration while the
	// authority quorum is unavailable (split-brain or majority outage).
	StateDegraded = core.StateDegraded
)

// ErrUnavailable is returned while a node cannot serve trusted time.
var ErrUnavailable = core.ErrUnavailable

// Counters is the uniform cumulative-counter set every protocol
// variant maintains; the hardening-only tallies stay zero on
// original-protocol nodes.
type Counters = engine.Counters

// NodeID identifies a protocol participant: it is both the wire-layer
// authenticated sender identity and, in simulations, the network
// address.
type NodeID = simnet.Addr

// KeySize is the cluster pre-shared key size (AES-256).
const KeySize = wire.KeySize

// Timestamp is a trusted timestamp on the Time Authority's timeline.
type Timestamp struct {
	// Nanos is nanoseconds since the authority's epoch (Unix epoch for
	// live deployments).
	Nanos int64
}

// Time converts the timestamp for use with the standard library (live
// deployments, where the authority serves Unix time).
func (t Timestamp) Time() time.Time { return time.Unix(0, t.Nanos) }
