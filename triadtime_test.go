package triadtime

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"triadtime/internal/simtime"
)

func labKey() []byte {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = byte(i + 31)
	}
	return key
}

func TestLabQuickstartFlow(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		lab.UseTriadLikeAEXs(i)
	}
	lab.Start()
	lab.Run(30 * time.Second)
	for i := 0; i < 3; i++ {
		ts, err := lab.TrustedNow(i)
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
		drift := time.Duration(ts.Nanos - lab.ReferenceNow())
		if drift < -time.Second || drift > time.Second {
			t.Errorf("node %d trusted time off reference by %v", i+1, drift)
		}
	}
}

func TestLabAttackFlow(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		lab.UseTriadLikeAEXs(i)
	}
	lab.AttackCalibration(2, FPlus)
	lab.Start()
	lab.Run(60 * time.Second)
	ratio := lab.Nodes[2].FCalib() / simtime.NominalTSCHz
	if math.Abs(ratio-1.1) > 0.01 {
		t.Errorf("F+ victim F_calib ratio = %v, want ~1.1", ratio)
	}
}

func TestLabHardened(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 3, Hardened: true})
	if err != nil {
		t.Fatal(err)
	}
	lab.AttackCalibration(2, FMinus)
	lab.Start()
	lab.Run(60 * time.Second)
	// Hardened victim: never silently corrupted.
	if f := lab.Nodes[2].FCalib(); f != 0 {
		ppm := math.Abs(f-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
		if ppm > 5000 {
			t.Errorf("hardened victim corrupted: %.0fppm", ppm)
		}
	}
}

func TestLabUnavailableBeforeStart(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.TrustedNow(0); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
}

func TestTimestampTime(t *testing.T) {
	ts := Timestamp{Nanos: 1_700_000_000_000_000_042}
	if got := ts.Time().UnixNano(); got != ts.Nanos {
		t.Errorf("Time() roundtrip = %d", got)
	}
}

func TestLiveFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	ta, err := NewAuthorityServer("127.0.0.1:0", labKey(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()

	node, err := NewLiveNode(LiveConfig{
		Key:       labKey(),
		ID:        1,
		Listen:    "127.0.0.1:0",
		Directory: map[NodeID]string{100: ta.LocalAddr().String()},
		Authority: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	deadline := time.Now().Add(20 * time.Second)
	for node.State() != StateOK {
		if time.Now().After(deadline) {
			t.Fatalf("live node never calibrated (state %v)", node.State())
		}
		time.Sleep(50 * time.Millisecond)
	}
	ts, err := node.TrustedNow()
	if err != nil {
		t.Fatal(err)
	}
	if off := time.Since(ts.Time()); off < -2*time.Second || off > 2*time.Second {
		t.Errorf("trusted time off wall clock by %v", off)
	}
	if ta.Served(1) == 0 {
		t.Error("authority reports zero served references")
	}
	// An injected AEX taints, then the node recovers via the TA.
	node.InjectAEX()
	recovered := false
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if node.State() == StateOK {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Error("node never recovered from injected AEX")
	}
}

func TestLiveHardenedFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	ta, err := NewAuthorityServer("127.0.0.1:0", labKey(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	node, err := NewLiveNode(LiveConfig{
		Key:       labKey(),
		ID:        1,
		Listen:    "127.0.0.1:0",
		Directory: map[NodeID]string{100: ta.LocalAddr().String()},
		Authority: 100,
		Hardened:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	deadline := time.Now().Add(30 * time.Second)
	for node.State() != StateOK {
		if time.Now().After(deadline) {
			t.Fatalf("hardened live node never calibrated (state %v)", node.State())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if _, err := node.TrustedNow(); err != nil {
		t.Errorf("TrustedNow: %v", err)
	}
}

// reserveUDPPorts finds n free loopback UDP ports. The sockets are
// closed before returning so NewLiveNode can re-bind them; the full
// cluster directory must be known before any node starts, so the
// usual bind-then-ask-for-the-address trick does not work here.
func reserveUDPPorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	conns := make([]net.PacketConn, n)
	for i := range addrs {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

// TestLiveClusterLoopback runs the full three-node-plus-authority
// topology over real loopback UDP sockets for both protocol variants:
// everyone calibrates, trusted time is monotonic while serving, and a
// tainted node recovers through its live peers.
func TestLiveClusterLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	for _, hardened := range []bool{false, true} {
		name := "original"
		if hardened {
			name = "hardened"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ta, err := NewAuthorityServer("127.0.0.1:0", labKey(), 100)
			if err != nil {
				t.Fatal(err)
			}
			defer ta.Close()

			addrs := reserveUDPPorts(t, 3)
			dir := map[NodeID]string{100: ta.LocalAddr().String()}
			for i, a := range addrs {
				dir[NodeID(i+1)] = a
			}
			nodes := make([]*LiveNode, 3)
			for i := range nodes {
				var peers []NodeID
				for j := 1; j <= 3; j++ {
					if j != i+1 {
						peers = append(peers, NodeID(j))
					}
				}
				cfg := LiveConfig{
					Key:       labKey(),
					ID:        NodeID(i + 1),
					Listen:    addrs[i],
					Directory: dir,
					Peers:     peers,
					Authority: 100,
					Hardened:  hardened,
				}
				if hardened {
					cfg.CalibWindow = 500 * time.Millisecond
				} else {
					// Short sleeps: same regression, s-scale startup.
					cfg.CalibSleeps = []time.Duration{0, 200 * time.Millisecond}
					cfg.CalibSamplesPerSleep = 2
				}
				n, err := NewLiveNode(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer n.Close()
				nodes[i] = n
			}

			waitOK := func(i int, d time.Duration) {
				t.Helper()
				deadline := time.Now().Add(d)
				for nodes[i].State() != StateOK {
					if time.Now().After(deadline) {
						t.Fatalf("node %d never reached OK (state %v)", i+1, nodes[i].State())
					}
					time.Sleep(20 * time.Millisecond)
				}
			}
			for i := range nodes {
				waitOK(i, 30*time.Second)
			}
			for i, n := range nodes {
				snap := n.Snapshot()
				if snap.Counters.TAReferences == 0 {
					t.Errorf("node %d calibrated without a TA reference: %+v", i+1, snap.Counters)
				}
			}

			// Trusted time must be monotonic on every node while serving.
			last := make([]int64, len(nodes))
			for iter := 0; iter < 40; iter++ {
				for i, n := range nodes {
					ts, err := n.TrustedNow()
					if err != nil {
						t.Fatalf("node %d unavailable mid-run: %v", i+1, err)
					}
					if ts.Nanos < last[i] {
						t.Fatalf("node %d trusted time went backwards: %d -> %d", i+1, last[i], ts.Nanos)
					}
					last[i] = ts.Nanos
				}
				time.Sleep(5 * time.Millisecond)
			}

			// A taint on node 1 recovers through live peers or the TA,
			// and time stays monotonic across the jump.
			nodes[0].InjectAEX()
			waitOK(0, 10*time.Second)
			ts, err := nodes[0].TrustedNow()
			if err != nil {
				t.Fatal(err)
			}
			if ts.Nanos < last[0] {
				t.Errorf("recovery moved trusted time backwards: %d -> %d", last[0], ts.Nanos)
			}
			snap := nodes[0].Snapshot()
			if snap.Counters.PeerUntaints+snap.Counters.TAReferences < 2 {
				t.Errorf("node 1 recovered without a new reference: %+v", snap.Counters)
			}
		})
	}
}

// TestLiveQuorumOutvotesLyingAuthority stands up three live Time
// Authorities, one serving time 300ms in the future, and checks both
// protocol variants calibrate by quorum onto the honest majority: the
// trusted clock lands near the wall clock (not near the lie), the
// quorum tallies record accepted rounds, and the liar is counted as a
// false ticker.
func TestLiveQuorumOutvotesLyingAuthority(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	const lie = 300 * time.Millisecond
	for _, hardened := range []bool{false, true} {
		name := "original"
		if hardened {
			name = "hardened"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tas := make([]*AuthorityServer, 3)
			dir := map[NodeID]string{}
			for i := range tas {
				id := NodeID(100 + i)
				clock := func() int64 { return time.Now().UnixNano() }
				if i == 2 {
					clock = func() int64 { return time.Now().Add(lie).UnixNano() }
				}
				ta, err := NewAuthorityServerClock("127.0.0.1:0", labKey(), id, clock)
				if err != nil {
					t.Fatal(err)
				}
				defer ta.Close()
				tas[i] = ta
				dir[id] = ta.LocalAddr().String()
			}

			cfg := LiveConfig{
				Key:         labKey(),
				ID:          1,
				Listen:      "127.0.0.1:0",
				Directory:   dir,
				Authority:   100,
				Authorities: []NodeID{100, 101, 102},
				Hardened:    hardened,
			}
			if hardened {
				cfg.CalibWindow = 500 * time.Millisecond
			}
			node, err := NewLiveNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer node.Close()

			deadline := time.Now().Add(30 * time.Second)
			for node.State() != StateOK {
				if time.Now().After(deadline) {
					t.Fatalf("quorum node never calibrated (state %v)", node.State())
				}
				time.Sleep(50 * time.Millisecond)
			}
			ts, err := node.TrustedNow()
			if err != nil {
				t.Fatal(err)
			}
			if off := time.Since(ts.Time()); off < -lie/2 || off > lie/2 {
				t.Errorf("trusted time off wall clock by %v — quorum followed the liar?", off)
			}
			snap := node.Snapshot()
			if snap.Counters.QuorumAccepts == 0 {
				t.Errorf("no quorum rounds accepted: %+v", snap.Counters)
			}
			if snap.Counters.FalseTickers == 0 {
				t.Errorf("lying authority never flagged as false ticker: %+v", snap.Counters)
			}
		})
	}
}

// TestLiveQuorumSurvivesAuthorityLoss runs a node against two live
// authorities with MinAgree=1 and kills the primary mid-run: the node
// must keep recovering from taints through the surviving authority.
func TestLiveQuorumSurvivesAuthorityLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	tas := make([]*AuthorityServer, 2)
	dir := map[NodeID]string{}
	for i := range tas {
		id := NodeID(100 + i)
		ta, err := NewAuthorityServer("127.0.0.1:0", labKey(), id)
		if err != nil {
			t.Fatal(err)
		}
		defer ta.Close()
		tas[i] = ta
		dir[id] = ta.LocalAddr().String()
	}

	node, err := NewLiveNode(LiveConfig{
		Key:            labKey(),
		ID:             1,
		Listen:         "127.0.0.1:0",
		Directory:      dir,
		Authority:      100,
		Authorities:    []NodeID{100, 101},
		QuorumMinAgree: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	waitOK := func(what string, d time.Duration) {
		t.Helper()
		deadline := time.Now().Add(d)
		for node.State() != StateOK {
			if time.Now().After(deadline) {
				t.Fatalf("%s: node stuck in state %v", what, node.State())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitOK("initial calibration", 30*time.Second)
	before := node.Snapshot().Counters.QuorumAccepts
	if before == 0 {
		t.Fatalf("calibrated without a quorum round: %+v", node.Snapshot().Counters)
	}

	// Kill the primary authority. With MinAgree=1 the survivor alone
	// still satisfies the quorum rule, so a taint must remain
	// recoverable (no peers exist to vouch — the reference round is the
	// only path back to OK).
	tas[0].Close()
	node.InjectAEX()
	waitOK("recovery after authority loss", 20*time.Second)
	after := node.Snapshot().Counters
	if after.QuorumAccepts <= before {
		t.Errorf("no quorum round accepted after primary loss: before=%d counters=%+v", before, after)
	}
	ts, err := node.TrustedNow()
	if err != nil {
		t.Fatal(err)
	}
	if off := time.Since(ts.Time()); off < -2*time.Second || off > 2*time.Second {
		t.Errorf("trusted time off wall clock by %v after failover", off)
	}
}

func TestNewLiveNodeErrors(t *testing.T) {
	if _, err := NewLiveNode(LiveConfig{Listen: "256.256.256.256:99999"}); err == nil {
		t.Error("bad listen address accepted")
	}
	if _, err := NewLiveNode(LiveConfig{
		Key:    []byte("short"),
		ID:     1,
		Listen: "127.0.0.1:0",
	}); err == nil {
		t.Error("bad key accepted")
	}
}

func TestLiveStatusEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	ta, err := NewAuthorityServer("127.0.0.1:0", labKey(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	node, err := NewLiveNode(LiveConfig{
		Key:       labKey(),
		ID:        1,
		Listen:    "127.0.0.1:0",
		Directory: map[NodeID]string{100: ta.LocalAddr().String()},
		Authority: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	addr, err := node.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for node.State() != StateOK && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr.String() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != "OK" || !snap.Available || snap.FCalibHz == 0 {
		t.Errorf("snapshot = %+v", snap)
	}

	m, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	body, err := io.ReadAll(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "triad_node_available 1") ||
		!strings.Contains(text, "triad_node_fcalib_hz") {
		t.Errorf("metrics exposition:\n%s", text)
	}
}

// TestLiveServeClients runs the full serving stack end to end: a live
// node calibrates against a live TA, opens its client-facing endpoint,
// and answers sealed TimeRequests with its trusted time; the serving
// tallies surface on /metrics.
func TestLiveServeClients(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	ta, err := NewAuthorityServer("127.0.0.1:0", labKey(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	node, err := NewLiveNode(LiveConfig{
		Key:         labKey(),
		ID:          1,
		Listen:      "127.0.0.1:0",
		Directory:   map[NodeID]string{100: ta.LocalAddr().String()},
		Authority:   100,
		CalibSleeps: []time.Duration{0, 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	serveKey := make([]byte, KeySize)
	for i := range serveKey {
		serveKey[i] = byte(i + 77)
	}
	serveAddr, err := node.ServeClients(ClientServeConfig{
		Listen: "127.0.0.1:0",
		Key:    serveKey,
		TSAKey: serveKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.ServeClients(ClientServeConfig{Listen: "127.0.0.1:0", Key: serveKey}); err == nil {
		t.Fatal("second ServeClients accepted")
	}
	statusAddr, err := node.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for node.State() != StateOK {
		if time.Now().After(deadline) {
			t.Fatalf("live node never calibrated (state %v)", node.State())
		}
		time.Sleep(50 * time.Millisecond)
	}

	client, err := net.Dial("udp", serveAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sealer, err := NewClientSealer(serveKey, 9001)
	if err != nil {
		t.Fatal(err)
	}
	opener, err := NewClientOpener(serveKey)
	if err != nil {
		t.Fatal(err)
	}
	req := TimeRequest{ClientID: 9001, Seq: 1, Flags: FlagWantToken}
	if _, err := client.Write(sealer.SealRequest(nil, req)); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatalf("no serving response: %v", err)
	}
	resp, err := opener.OpenResponse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || resp.ClientID != 9001 || resp.Seq != 1 || !resp.HasToken {
		t.Fatalf("serving response: %+v", resp)
	}
	if off := time.Since(time.Unix(0, resp.Nanos)); off < -2*time.Second || off > 2*time.Second {
		t.Errorf("served time off wall clock by %v", off)
	}
	if c := node.ServeCounters(); c.Served != 1 || c.TokensIssued != 1 {
		t.Errorf("serve counters: %s", c.Summary())
	}

	m, err := http.Get("http://" + statusAddr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	body, err := io.ReadAll(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "triad_serve_served_total 1") ||
		!strings.Contains(text, "triad_serve_queue_wait_nanos{quantile=\"0.99\"}") {
		t.Errorf("metrics missing serving series:\n%s", text)
	}
}

// liveCommitIncarnation is one serving-node incarnation in the restart
// tests: the node, its commitment endpoint, and a connected client.
type liveCommitIncarnation struct {
	t      *testing.T
	node   *LiveNode
	conn   net.Conn
	sealer *ClientSealer
	opener *ClientOpener
	status net.Addr
	seq    uint64
}

// bootCommitNode starts a node serving commitments from the given
// anchor file and waits for it to calibrate. Node and client sender
// identities are unique per incarnation so nothing trips the
// authority's or endpoint's per-identity replay windows.
func bootCommitNode(t *testing.T, taAddr string, serveKey []byte, anchor string, id NodeID) *liveCommitIncarnation {
	t.Helper()
	node, err := NewLiveNode(LiveConfig{
		Key:         labKey(),
		ID:          id,
		Listen:      "127.0.0.1:0",
		Directory:   map[NodeID]string{100: taAddr},
		Authority:   100,
		CalibSleeps: []time.Duration{0, 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	serveAddr, err := node.ServeClients(ClientServeConfig{
		Listen:       "127.0.0.1:0",
		Key:          serveKey,
		TSAKey:       serveKey,
		CommitAnchor: anchor,
	})
	if err != nil {
		node.Close()
		t.Fatal(err)
	}
	statusAddr, err := node.ServeStatus("127.0.0.1:0")
	if err != nil {
		node.Close()
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for node.State() != StateOK {
		if time.Now().After(deadline) {
			node.Close()
			t.Fatalf("incarnation %d never calibrated (state %v)", id, node.State())
		}
		time.Sleep(50 * time.Millisecond)
	}
	conn, err := net.Dial("udp", serveAddr.String())
	if err != nil {
		node.Close()
		t.Fatal(err)
	}
	sealer, err := NewClientSealer(serveKey, 9500+uint32(id))
	if err != nil {
		t.Fatal(err)
	}
	opener, err := NewClientOpener(serveKey)
	if err != nil {
		t.Fatal(err)
	}
	return &liveCommitIncarnation{t: t, node: node, conn: conn,
		sealer: sealer, opener: opener, status: statusAddr}
}

func (inc *liveCommitIncarnation) shutdown() {
	inc.conn.Close()
	if err := inc.node.Close(); err != nil {
		inc.t.Errorf("close: %v", err)
	}
}

// commitOp runs one commit round-trip against the incarnation.
func (inc *liveCommitIncarnation) commitOp(req CommitRequest) CommitResponse {
	inc.t.Helper()
	inc.seq++
	req.ClientID, req.Seq = uint64(inc.sealer.s.SenderID()), inc.seq
	if _, err := inc.conn.Write(inc.sealer.SealCommitRequest(nil, req)); err != nil {
		inc.t.Fatal(err)
	}
	inc.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	n, err := inc.conn.Read(buf)
	if err != nil {
		inc.t.Fatalf("no commit response: %v", err)
	}
	resp, err := inc.opener.OpenCommitResponse(buf[:n])
	if err != nil {
		inc.t.Fatal(err)
	}
	return resp
}

// lock mints a token sealing a document for dur of trusted time.
func (inc *liveCommitIncarnation) lock(tag byte, dur time.Duration, flags uint8) CommitResponse {
	inc.t.Helper()
	ts, err := inc.node.TrustedNow()
	if err != nil {
		inc.t.Fatal(err)
	}
	var req CommitRequest
	req.Kind = KindCommitLock
	req.Flags = flags
	req.Hash[0] = tag
	req.UnlockNanos = ts.Nanos + int64(dur)
	resp := inc.commitOp(req)
	if resp.Verdict != CommitOK {
		inc.t.Fatalf("lock %d refused: verdict %d", tag, resp.Verdict)
	}
	return resp
}

func (inc *liveCommitIncarnation) unlock(token [CommitTokenSize]byte) CommitResponse {
	var req CommitRequest
	req.Kind = KindCommitUnlock
	req.Token = token
	return inc.commitOp(req)
}

// TestLiveCommitRestartFencing is the persistence acceptance test: a
// lease epoch provably survives a process restart. Incarnation 1 mints
// a lease-mode and a durable token; after a restart the lease token is
// fenced by the epoch bump while the durable commitment still unlocks.
// Then the anchor file is rolled back to a pre-restart copy: the next
// incarnation reopens on the stale epoch, detects the rollback from an
// authentic future-epoch token, re-fences past it, and keeps serving.
func TestLiveCommitRestartFencing(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	ta, err := NewAuthorityServer("127.0.0.1:0", labKey(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	taAddr := ta.LocalAddr().String()
	serveKey := make([]byte, KeySize)
	for i := range serveKey {
		serveKey[i] = byte(i + 77)
	}
	anchor := filepath.Join(t.TempDir(), "anchor")

	// Incarnation 1, epoch 1: one lease-mode token, one durable.
	inc1 := bootCommitNode(t, taAddr, serveKey, anchor, 1)
	leaseResp := inc1.lock(1, 3*time.Second, FlagCommitLease)
	durableResp := inc1.lock(2, 3*time.Second, 0)
	if leaseResp.Epoch != 1 || durableResp.Epoch != 1 || inc1.node.CommitEpoch() != 1 {
		t.Fatalf("first incarnation epochs: lease=%d durable=%d vault=%d",
			leaseResp.Epoch, durableResp.Epoch, inc1.node.CommitEpoch())
	}
	staleAnchor, err := os.ReadFile(anchor)
	if err != nil {
		t.Fatalf("anchor not persisted: %v", err)
	}
	inc1.shutdown()

	// Incarnation 2, epoch 2: the restart fences the lease token; the
	// durable commitment survives and unlocks once ripe.
	inc2 := bootCommitNode(t, taAddr, serveKey, anchor, 2)
	if got := inc2.node.CommitEpoch(); got != 2 {
		t.Fatalf("epoch after restart = %d, want 2", got)
	}
	if wait := time.Until(time.Unix(0, durableResp.UnlockNanos).Add(300 * time.Millisecond)); wait > 0 {
		time.Sleep(wait)
	}
	if resp := inc2.unlock(leaseResp.Token); resp.Verdict != CommitFenced {
		t.Fatalf("stale lease holder not fenced: verdict %d", resp.Verdict)
	}
	if resp := inc2.unlock(durableResp.Token); resp.Verdict != CommitOK || resp.Epoch != 2 {
		t.Fatalf("durable token did not survive restart: verdict %d epoch %d", resp.Verdict, resp.Epoch)
	}
	inc2.shutdown()

	// Incarnation 3, epoch 3: mint the token that will prove the
	// rollback.
	inc3 := bootCommitNode(t, taAddr, serveKey, anchor, 3)
	proofResp := inc3.lock(3, time.Second, 0)
	if proofResp.Epoch != 3 {
		t.Fatalf("third incarnation epoch = %d, want 3", proofResp.Epoch)
	}
	inc3.shutdown()

	// Roll the anchor back to the epoch-1 copy and restart: the vault
	// reopens on the stale epoch, and the authentic epoch-3 token is
	// proof of the rollback — refused, detected, re-fenced past it.
	if err := os.WriteFile(anchor, staleAnchor, 0o600); err != nil {
		t.Fatal(err)
	}
	inc4 := bootCommitNode(t, taAddr, serveKey, anchor, 4)
	if got := inc4.node.CommitEpoch(); got != 2 {
		t.Fatalf("epoch from rolled-back anchor = %d, want 2", got)
	}
	if resp := inc4.unlock(proofResp.Token); resp.Verdict != CommitFenced {
		t.Fatalf("future-epoch token not refused: verdict %d", resp.Verdict)
	}
	if got := inc4.node.CommitEpoch(); got != 4 {
		t.Fatalf("epoch after rollback detection = %d, want 4", got)
	}
	if cc := inc4.node.CommitCounters(); cc.AnchorRollbacks != 1 {
		t.Fatalf("anchor rollbacks = %d, want 1", cc.AnchorRollbacks)
	}

	// The re-fenced vault keeps serving: a fresh commitment locks at
	// the bumped epoch and unlocks on time.
	fresh := inc4.lock(4, time.Second, 0)
	if fresh.Epoch != 4 {
		t.Fatalf("post-refence lock epoch = %d, want 4", fresh.Epoch)
	}
	time.Sleep(time.Until(time.Unix(0, fresh.UnlockNanos).Add(300 * time.Millisecond)))
	if resp := inc4.unlock(fresh.Token); resp.Verdict != CommitOK {
		t.Fatalf("post-refence unlock refused: verdict %d", resp.Verdict)
	}

	m, err := http.Get("http://" + inc4.status.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(m.Body)
	m.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"triad_commit_epoch 4",
		"triad_commit_anchor_rollbacks_total 1",
		"triad_commit_unlocks_refused_fenced_total 1",
		"triad_commit_unlocks_granted_total 1",
		"triad_commit_locks_issued_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	inc4.shutdown()
}
