package tsa_test

import (
	"fmt"
	"time"

	"triadtime"
	"triadtime/tsa"
)

// ExampleStamper shows a timestamping authority backed by a simulated
// Triad node's trusted clock.
func ExampleStamper() {
	lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: 8})
	if err != nil {
		panic(err)
	}
	lab.Start()
	lab.Run(30 * time.Second) // calibrate

	stamper, err := tsa.New(lab.NodeClock(0), []byte("verification-key-of-32-bytes-ok!"))
	if err != nil {
		panic(err)
	}
	document := []byte("signed agreement")
	token, err := stamper.Issue(document)
	if err != nil {
		panic(err)
	}
	fmt.Println("genuine verifies:", stamper.Verify(document, token))

	forged := token
	forged.Nanos -= int64(time.Hour) // backdating attempt
	fmt.Println("backdated verifies:", stamper.Verify(document, forged))
	// Output:
	// genuine verifies: true
	// backdated verifies: false
}
