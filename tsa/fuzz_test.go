package tsa

import "testing"

// FuzzUnmarshal: the token parser must never panic and every accepted
// token must re-serialize identically.
func FuzzUnmarshal(f *testing.F) {
	s, _ := New(&fakeClock{nanos: 1}, []byte("0123456789abcdef0123456789abcdef"))
	tok, _ := s.Issue([]byte("seed"))
	f.Add(tok.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, TokenSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		tok, err := Unmarshal(data)
		if err != nil {
			return
		}
		round := tok.Marshal()
		if len(round) != TokenSize {
			t.Fatalf("marshal size %d", len(round))
		}
		tok2, err := Unmarshal(round)
		if err != nil || tok2 != tok {
			t.Fatal("canonical roundtrip broke")
		}
	})
}
