// Package tsa builds an RFC3161-style TimeStamping Authority on top of
// a trusted-time source: it issues compact, MAC-authenticated tokens
// binding a document hash to a trusted timestamp. TimeStamping
// Authorities are the first motivating use-case of the paper's
// introduction — their value collapses if the host can manipulate the
// clock, which is exactly what Triad-style trusted time prevents.
//
// The package is transport- and protocol-agnostic: any Clock works —
// a simulated or live Triad node (original or hardened), or a plain
// system clock for tests.
package tsa

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Clock supplies trusted timestamps in nanoseconds. core.Node,
// resilient.Node and the triadtime façade all provide compatible
// methods.
type Clock interface {
	TrustedNow() (int64, error)
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() (int64, error)

// TrustedNow implements Clock.
func (f ClockFunc) TrustedNow() (int64, error) { return f() }

// HashSize is the document hash size (SHA-256).
const HashSize = sha256.Size

// nonceSize makes tokens over the same (document, nanosecond) pair
// distinct and untransferable between requests.
const nonceSize = 16

// macSize is the HMAC-SHA256 tag size.
const macSize = sha256.Size

// TokenSize is the fixed serialized token size.
const TokenSize = HashSize + 8 + nonceSize + macSize

// Token binds a document hash to a trusted timestamp.
type Token struct {
	Hash  [HashSize]byte
	Nanos int64
	Nonce [nonceSize]byte
	MAC   [macSize]byte
}

// Time returns the token's timestamp on the authority timeline (Unix
// for live deployments).
func (t Token) Time() time.Time { return time.Unix(0, t.Nanos) }

// Marshal serializes the token.
func (t Token) Marshal() []byte {
	out := make([]byte, TokenSize)
	t.MarshalInto(out)
	return out
}

// MarshalInto serializes the token into b, which must be at least
// TokenSize bytes. The allocation-free form of Marshal, for response
// paths that embed tokens in preallocated datagram buffers.
func (t Token) MarshalInto(b []byte) {
	_ = b[TokenSize-1] // bounds hint
	copy(b, t.Hash[:])
	binary.BigEndian.PutUint64(b[HashSize:], uint64(t.Nanos))
	copy(b[HashSize+8:], t.Nonce[:])
	copy(b[HashSize+8+nonceSize:], t.MAC[:])
}

// ErrTokenEncoding is returned for malformed serialized tokens.
var ErrTokenEncoding = errors.New("tsa: malformed token")

// Unmarshal parses a token produced by Marshal.
func Unmarshal(b []byte) (Token, error) {
	if len(b) != TokenSize {
		return Token{}, fmt.Errorf("%w: %d bytes, want %d", ErrTokenEncoding, len(b), TokenSize)
	}
	var t Token
	copy(t.Hash[:], b[:HashSize])
	t.Nanos = int64(binary.BigEndian.Uint64(b[HashSize:]))
	copy(t.Nonce[:], b[HashSize+8:])
	copy(t.MAC[:], b[HashSize+8+nonceSize:])
	return t, nil
}

// Stamper issues and verifies timestamp tokens.
type Stamper struct {
	clock Clock
	key   []byte
	// randRead is swapped in tests for determinism.
	randRead func([]byte) (int, error)
}

// New creates a stamper. The key authenticates tokens; anyone holding
// it can verify (and forge), so share it only with verifiers you trust
// — or run the stamper inside the TEE alongside the Triad node.
func New(clock Clock, key []byte) (*Stamper, error) {
	if clock == nil {
		return nil, errors.New("tsa: clock is required")
	}
	if len(key) < 16 {
		return nil, fmt.Errorf("tsa: key too short (%d bytes, want >= 16)", len(key))
	}
	cp := make([]byte, len(key))
	copy(cp, key)
	return &Stamper{clock: clock, key: cp, randRead: rand.Read}, nil
}

// Issue binds the document to the current trusted time. It fails when
// trusted time is unavailable (the Triad node is tainted/calibrating);
// callers retry, as with any availability-gated trusted service.
func (s *Stamper) Issue(document []byte) (Token, error) {
	nanos, err := s.clock.TrustedNow()
	if err != nil {
		return Token{}, fmt.Errorf("tsa: %w", err)
	}
	return s.IssueAt(sha256.Sum256(document), nanos)
}

// IssueAt binds an already-computed document hash to a trusted
// timestamp the caller obtained. It is the batching form of Issue: the
// serving subsystem reads trusted time once per batch and stamps every
// token in the batch against that read, instead of one clock call per
// request. The caller vouches that nanos came from the trusted clock —
// the token is only as trustworthy as its timestamp source.
func (s *Stamper) IssueAt(hash [HashSize]byte, nanos int64) (Token, error) {
	t := Token{Hash: hash, Nanos: nanos}
	if _, err := s.randRead(t.Nonce[:]); err != nil {
		return Token{}, fmt.Errorf("tsa: nonce: %w", err)
	}
	copy(t.MAC[:], s.mac(t))
	return t, nil
}

// Verify checks that the token authentically binds the document.
func (s *Stamper) Verify(document []byte, t Token) bool {
	if sha256.Sum256(document) != t.Hash {
		return false
	}
	return hmac.Equal(t.MAC[:], s.mac(t))
}

// VerifyBytes parses and verifies a serialized token.
func (s *Stamper) VerifyBytes(document, token []byte) (Token, bool) {
	t, err := Unmarshal(token)
	if err != nil {
		return Token{}, false
	}
	return t, s.Verify(document, t)
}

func (s *Stamper) mac(t Token) []byte {
	m := hmac.New(sha256.New, s.key)
	m.Write(t.Hash[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(t.Nanos))
	m.Write(buf[:])
	m.Write(t.Nonce[:])
	return m.Sum(nil)
}
