package tsa

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var errUnavailable = errors.New("unavailable")

type fakeClock struct {
	nanos int64
	fail  bool
}

func (c *fakeClock) TrustedNow() (int64, error) {
	if c.fail {
		return 0, errUnavailable
	}
	c.nanos++
	return c.nanos, nil
}

func testStamper(t *testing.T) (*Stamper, *fakeClock) {
	t.Helper()
	clock := &fakeClock{nanos: 1_000_000}
	s, err := New(clock, []byte("0123456789abcdef0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return s, clock
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, []byte("0123456789abcdef")); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := New(&fakeClock{}, []byte("short")); err == nil {
		t.Error("short key accepted")
	}
}

func TestNewCopiesKey(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	s, _ := New(&fakeClock{}, key)
	tok, _ := s.Issue([]byte("doc"))
	key[0] ^= 0xFF // caller mutates its buffer
	if !s.Verify([]byte("doc"), tok) {
		t.Error("stamper key aliased the caller's buffer")
	}
}

func TestIssueAndVerify(t *testing.T) {
	s, _ := testStamper(t)
	doc := []byte("the agreement")
	tok, err := s.Issue(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Verify(doc, tok) {
		t.Error("genuine token rejected")
	}
	if tok.Time() != time.Unix(0, tok.Nanos) {
		t.Error("Time() inconsistent")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	s, _ := testStamper(t)
	doc := []byte("the agreement")
	tok, _ := s.Issue(doc)

	backdated := tok
	backdated.Nanos -= int64(time.Hour)
	if s.Verify(doc, backdated) {
		t.Error("backdated token accepted")
	}
	swapped := tok
	swapped.Hash[0] ^= 1
	if s.Verify(doc, swapped) {
		t.Error("hash-swapped token accepted")
	}
	renonced := tok
	renonced.Nonce[0] ^= 1
	if s.Verify(doc, renonced) {
		t.Error("nonce-tampered token accepted")
	}
	if s.Verify([]byte("another document"), tok) {
		t.Error("token transferred to another document")
	}
}

func TestVerifyRejectsForeignKey(t *testing.T) {
	s1, _ := testStamper(t)
	other, _ := New(&fakeClock{}, []byte("ffffffffffffffffffffffffffffffff"))
	tok, _ := s1.Issue([]byte("doc"))
	if other.Verify([]byte("doc"), tok) {
		t.Error("token verified under a different key")
	}
}

func TestIssuePropagatesUnavailability(t *testing.T) {
	s, clock := testStamper(t)
	clock.fail = true
	if _, err := s.Issue([]byte("doc")); !errors.Is(err, errUnavailable) {
		t.Errorf("err = %v, want the clock's unavailability", err)
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	s, _ := testStamper(t)
	tok, _ := s.Issue([]byte("doc"))
	parsed, err := Unmarshal(tok.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != tok {
		t.Error("roundtrip mismatch")
	}
	got, ok := s.VerifyBytes([]byte("doc"), tok.Marshal())
	if !ok || got != tok {
		t.Error("VerifyBytes failed on genuine token")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, TokenSize-1)); !errors.Is(err, ErrTokenEncoding) {
		t.Error("short buffer accepted")
	}
	if _, ok := (&Stamper{key: []byte("0123456789abcdef")}).VerifyBytes(nil, []byte("junk")); ok {
		t.Error("junk token verified")
	}
}

func TestTokensAreDistinctPerIssue(t *testing.T) {
	s, clock := testStamper(t)
	clock.nanos = 42
	t1, _ := s.Issue([]byte("doc"))
	clock.nanos = 42 // same next timestamp
	t2, _ := s.Issue([]byte("doc"))
	if t1 == t2 {
		t.Error("two issues produced identical tokens (nonce not working)")
	}
}

func TestMarshalQuick(t *testing.T) {
	f := func(hash [HashSize]byte, nanos int64, nonce [nonceSize]byte, mac [macSize]byte) bool {
		tok := Token{Hash: hash, Nanos: nanos, Nonce: nonce, MAC: mac}
		got, err := Unmarshal(tok.Marshal())
		return err == nil && got == tok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
